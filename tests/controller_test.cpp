// Tests for the trace-driven memory controller.
#include <gtest/gtest.h>

#include <array>

#include "dram/controller.hpp"

namespace {

using namespace dl::dram;
using dl::Picoseconds;

class ControllerTest : public ::testing::Test {
 protected:
  Geometry g = Geometry::tiny();
  Timing t = ddr4_2400();
  Controller ctrl{g, t};
};

TEST_F(ControllerTest, FirstAccessIsRowMiss) {
  std::array<std::uint8_t, 4> buf{};
  const auto r = ctrl.read(0, buf);
  EXPECT_TRUE(r.granted);
  EXPECT_FALSE(r.row_hit);
  EXPECT_EQ(r.latency, t.tRCD + t.tCAS + t.tBURST);
}

TEST_F(ControllerTest, SecondAccessSameRowHits) {
  std::array<std::uint8_t, 4> buf{};
  ctrl.read(0, buf);
  const auto r = ctrl.read(8, buf);
  EXPECT_TRUE(r.row_hit);
  EXPECT_EQ(r.latency, t.tCAS + t.tBURST);
}

TEST_F(ControllerTest, ConflictPaysPrecharge) {
  std::array<std::uint8_t, 4> buf{};
  ctrl.read(0, buf);                      // opens row 0
  const auto r = ctrl.read(g.row_bytes, buf);  // same bank, next row
  EXPECT_FALSE(r.row_hit);
  EXPECT_EQ(r.latency, t.tRP + t.tRCD + t.tCAS + t.tBURST);
}

TEST_F(ControllerTest, WriteReadRoundTripThroughDram) {
  const std::array<std::uint8_t, 3> in{9, 8, 7};
  ctrl.write(100, in);
  std::array<std::uint8_t, 3> out{};
  ctrl.read(100, out);
  EXPECT_EQ(in, out);
}

TEST_F(ControllerTest, BulkTransfersCrossRows) {
  std::vector<std::uint8_t> in(g.row_bytes + 100, 0xAB);
  const auto w = ctrl.write_bulk(g.row_bytes - 50, in);
  EXPECT_TRUE(w.granted);
  std::vector<std::uint8_t> out(in.size());
  const auto r = ctrl.read_bulk(g.row_bytes - 50, out);
  EXPECT_TRUE(r.granted);
  EXPECT_EQ(in, out);
}

TEST_F(ControllerTest, BulkRowHitAggregatesAnyHit) {
  // Fresh controller, both target rows closed: no chunk hits.
  std::vector<std::uint8_t> out(g.row_bytes + 100);
  const auto cold = ctrl.read_bulk(g.row_bytes - 50, out);
  EXPECT_FALSE(cold.row_hit);
  // Re-open the first row of the span; the first chunk now hits while the
  // second still conflicts — any-hit semantics report a bulk row hit.
  std::array<std::uint8_t, 4> small{};
  ctrl.read(g.row_bytes - 50, small);
  const auto warm = ctrl.read_bulk(g.row_bytes - 50, out);
  EXPECT_TRUE(warm.row_hit);
  // Writes aggregate the same way.
  std::vector<std::uint8_t> in(g.row_bytes + 100, 0x5A);
  ctrl.read(g.row_bytes - 50, small);
  const auto w = ctrl.write_bulk(g.row_bytes - 50, in);
  EXPECT_TRUE(w.row_hit);
}

TEST_F(ControllerTest, HammerCountsActivations) {
  for (int i = 0; i < 5; ++i) ctrl.hammer(0);
  EXPECT_EQ(ctrl.stats().get("hammer_acts"), 5.0);
  EXPECT_GE(ctrl.stats().get("activates"), 5.0);
}

TEST_F(ControllerTest, ActivationListenerSeesPhysicalRow) {
  struct Probe final : ActivationListener {
    std::vector<GlobalRowId> rows;
    void on_activate(GlobalRowId row, Picoseconds) override {
      rows.push_back(row);
    }
  } probe;
  ctrl.add_listener(&probe);
  std::array<std::uint8_t, 1> buf{};
  ctrl.read(3 * g.row_bytes, buf);
  ASSERT_EQ(probe.rows.size(), 1u);
  EXPECT_EQ(probe.rows[0], 3u);
}

TEST_F(ControllerTest, IndirectionRedirectsAccess) {
  const std::array<std::uint8_t, 1> in{0x55};
  ctrl.write(0, in);  // row 0, byte 0
  // Physically relocate row 0's data to row 7 and update the mapping.
  ctrl.data().copy_row(0, 7);
  ctrl.indirection().swap_logical(0, 7);
  std::array<std::uint8_t, 1> out{};
  ctrl.read(0, out);  // still addressed as row 0
  EXPECT_EQ(out[0], 0x55);
}

TEST_F(ControllerTest, RowCloneCopiesWithinSubarray) {
  const std::array<std::uint8_t, 2> in{0xCA, 0xFE};
  ctrl.write(0, in);
  ctrl.row_clone(0, 5);  // rows 0 and 5 share subarray 0
  std::array<std::uint8_t, 2> out{};
  ctrl.read(5 * g.row_bytes, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(ctrl.stats().get("rowclones"), 1.0);
}

TEST_F(ControllerTest, RowCloneRejectsCrossSubarray) {
  // Row 0 is subarray 0; row 64 is subarray 1 in the tiny geometry.
  EXPECT_THROW(ctrl.row_clone(0, 64), dl::Error);
}

TEST_F(ControllerTest, RowCloneCorruptionFlipsOneBit) {
  const std::array<std::uint8_t, 1> in{0x00};
  ctrl.write(0, in);
  ctrl.row_clone(0, 5, /*corrupt=*/true, /*corrupt_byte=*/0,
                 /*corrupt_bit=*/2);
  std::array<std::uint8_t, 1> out{};
  ctrl.read(5 * g.row_bytes, out);
  EXPECT_EQ(out[0], 0b100);
  EXPECT_EQ(ctrl.stats().get("rowclone_corruptions"), 1.0);
}

TEST_F(ControllerTest, GateCanDenyAccess) {
  struct DenyAll final : AccessGate {
    GateDecision before_access(const AccessRequest&, Controller&) override {
      return GateDecision::kDeny;
    }
  } gate;
  ctrl.set_gate(&gate);
  std::array<std::uint8_t, 1> buf{};
  const auto r = ctrl.read(0, buf);
  EXPECT_FALSE(r.granted);
  EXPECT_EQ(r.latency, 0);
  EXPECT_EQ(ctrl.stats().get("denied_accesses"), 1.0);
  ctrl.set_gate(nullptr);
  EXPECT_TRUE(ctrl.read(0, buf).granted);
}

TEST_F(ControllerTest, GateSeesRequestMetadata) {
  struct Probe final : AccessGate {
    AccessRequest last;
    GateDecision before_access(const AccessRequest& req,
                               Controller&) override {
      last = req;
      return GateDecision::kAllow;
    }
  } gate;
  ctrl.set_gate(&gate);
  std::array<std::uint8_t, 2> buf{};
  ctrl.write(2 * g.row_bytes + 17, buf, /*can_unlock=*/true);
  EXPECT_EQ(gate.last.logical_row, 2u);
  EXPECT_EQ(gate.last.byte, 17u);
  EXPECT_TRUE(gate.last.is_write);
  EXPECT_TRUE(gate.last.can_unlock);
}

TEST_F(ControllerTest, RefreshWindowsFire) {
  struct Probe final : ActivationListener {
    int windows = 0;
    void on_activate(GlobalRowId, Picoseconds) override {}
    void on_refresh_window(Picoseconds) override { ++windows; }
  } probe;
  ctrl.add_listener(&probe);
  ctrl.advance_time(t.tREFW * 3 + 10);
  EXPECT_EQ(probe.windows, 3);
  EXPECT_EQ(ctrl.refresh_windows(), 3u);
}

TEST_F(ControllerTest, DefenseScopeAccountsTime) {
  std::array<std::uint8_t, 1> buf{};
  ctrl.read(0, buf);
  const Picoseconds before = ctrl.defense_time();
  EXPECT_EQ(before, 0);
  {
    DefenseScope scope(ctrl);
    ctrl.row_clone(0, 1);
  }
  EXPECT_GT(ctrl.defense_time(), 0);
  const Picoseconds after = ctrl.defense_time();
  ctrl.read(2 * g.row_bytes, buf);  // outside scope: not counted
  EXPECT_EQ(ctrl.defense_time(), after);
}

TEST_F(ControllerTest, TargetedRefreshNotifiesListeners) {
  struct Probe final : ActivationListener {
    std::vector<GlobalRowId> refreshed;
    void on_activate(GlobalRowId, Picoseconds) override {}
    void on_row_refresh(GlobalRowId row) override {
      refreshed.push_back(row);
    }
  } probe;
  ctrl.add_listener(&probe);
  ctrl.refresh_row(11);
  ASSERT_EQ(probe.refreshed.size(), 1u);
  EXPECT_EQ(probe.refreshed[0], 11u);
  EXPECT_EQ(ctrl.stats().get("targeted_refreshes"), 1.0);
}

TEST_F(ControllerTest, TraceRecordsCommands) {
  ctrl.trace().set_capacity(8);
  std::array<std::uint8_t, 1> buf{};
  ctrl.read(0, buf);
  ctrl.row_clone(0, 1);
  const auto& recs = ctrl.trace().records();
  ASSERT_GE(recs.size(), 3u);
  EXPECT_EQ(recs[0].kind, CommandKind::kActivate);
  EXPECT_EQ(recs.back().kind, CommandKind::kRowClone);
}

TEST_F(ControllerTest, TraceCapacityBounds) {
  ctrl.trace().set_capacity(2);
  std::array<std::uint8_t, 1> buf{};
  for (int i = 0; i < 5; ++i) ctrl.hammer(0);
  EXPECT_LE(ctrl.trace().records().size(), 2u);
  EXPECT_GT(ctrl.trace().dropped(), 0u);
  (void)buf;
}

}  // namespace
