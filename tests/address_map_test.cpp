// Property tests for the physical-address mapper.
#include <gtest/gtest.h>

#include <tuple>

#include "dram/address_map.hpp"

namespace {

using namespace dl::dram;

class MapperBijection
    : public ::testing::TestWithParam<std::tuple<Geometry, MapScheme>> {};

TEST_P(MapperBijection, PhysToLocationRoundTrip) {
  const auto& [g, scheme] = GetParam();
  const AddressMapper m(g, scheme);
  const std::uint64_t total = g.total_bytes();
  const std::uint64_t step = std::max<std::uint64_t>(1, total / 1009) | 1;
  for (PhysAddr addr = 0; addr < total; addr += step) {
    const Location loc = m.to_location(addr);
    EXPECT_EQ(m.to_phys(loc), addr);
  }
  EXPECT_EQ(m.to_phys(m.to_location(total - 1)), total - 1);
}

TEST_P(MapperBijection, RowBaseIsInverseOfRowOf) {
  const auto& [g, scheme] = GetParam();
  const AddressMapper m(g, scheme);
  const std::uint64_t rows = g.total_rows();
  const std::uint64_t step = std::max<std::uint64_t>(1, rows / 499);
  for (GlobalRowId row = 0; row < rows; row += step) {
    const PhysAddr base = m.row_base(row);
    EXPECT_EQ(m.row_of(base), row);
    EXPECT_EQ(m.row_of(base + g.row_bytes - 1), row);
  }
}

TEST_P(MapperBijection, ConsecutiveBytesShareRow) {
  const auto& [g, scheme] = GetParam();
  const AddressMapper m(g, scheme);
  const PhysAddr base = 3 * g.row_bytes;
  const Location first = m.to_location(base);
  const Location last = m.to_location(base + g.row_bytes - 1);
  EXPECT_EQ(first.row, last.row);
  EXPECT_EQ(first.byte, 0u);
  EXPECT_EQ(last.byte, g.row_bytes - 1);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndGeometries, MapperBijection,
    ::testing::Combine(::testing::Values(Geometry::tiny(),
                                         Geometry::ddr4_32gb_16bank()),
                       ::testing::Values(MapScheme::kRowBankColumn,
                                         MapScheme::kBankInterleaved)));

TEST(AddressMapper, InterleavingSpreadsRowsAcrossBanks) {
  const Geometry g = Geometry::tiny();
  const AddressMapper m(g, MapScheme::kBankInterleaved);
  // Consecutive rows land in different banks under interleaving.
  const Location r0 = m.to_location(0);
  const Location r1 = m.to_location(g.row_bytes);
  EXPECT_NE(r0.row.bank, r1.row.bank);

  const AddressMapper lin(g, MapScheme::kRowBankColumn);
  const Location l0 = lin.to_location(0);
  const Location l1 = lin.to_location(g.row_bytes);
  EXPECT_EQ(l0.row.bank, l1.row.bank);
  EXPECT_EQ(l1.row.row, l0.row.row + 1);
}

TEST(AddressMapper, OutOfRangeRejected) {
  const Geometry g = Geometry::tiny();
  const AddressMapper m(g, MapScheme::kRowBankColumn);
  EXPECT_THROW(static_cast<void>(m.to_location(g.total_bytes())), dl::Error);
}

}  // namespace
