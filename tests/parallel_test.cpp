// Tests for the dl::parallel execution engine and for the determinism
// guarantee the compute paths build on it: identical results for any
// thread count (the repo's experiments must not depend on DL_THREADS).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "circuit/montecarlo.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace dl;

/// Restores the autodetected thread count when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { parallel::set_threads(0); }
};

TEST(ParallelFor, ChunkCountIsThreadIndependent) {
  EXPECT_EQ(parallel::chunk_count(0, 0, 4), 0u);
  EXPECT_EQ(parallel::chunk_count(0, 1, 4), 1u);
  EXPECT_EQ(parallel::chunk_count(0, 8, 4), 2u);
  EXPECT_EQ(parallel::chunk_count(0, 9, 4), 3u);
  EXPECT_EQ(parallel::chunk_count(3, 9, 4), 2u);
  EXPECT_EQ(parallel::chunk_count(0, 9, 0), 9u);  // grain 0 clamps to 1
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    parallel::set_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel::parallel_for(
        0, hits.size(), 7,
        [&](std::size_t i0, std::size_t i1, std::size_t ci) {
          EXPECT_EQ(i0, ci * 7);
          EXPECT_EQ(i1, std::min<std::size_t>(hits.size(), i0 + 7));
          for (std::size_t i = i0; i < i1; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  bool ran = false;
  parallel::parallel_for(5, 5, 1,
                         [&](std::size_t, std::size_t, std::size_t) {
                           ran = true;
                         });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  parallel::set_threads(4);
  EXPECT_THROW(
      parallel::parallel_for(0, 100, 1,
                             [](std::size_t i0, std::size_t, std::size_t) {
                               DL_REQUIRE(i0 != 50, "boom");
                             }),
      dl::Error);
  // The pool must stay usable after a region fails.
  std::atomic<int> count{0};
  parallel::parallel_for(0, 10, 1,
                         [&](std::size_t, std::size_t, std::size_t) {
                           count.fetch_add(1);
                         });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  ThreadGuard guard;
  parallel::set_threads(4);
  std::atomic<int> total{0};
  parallel::parallel_for(0, 4, 1, [&](std::size_t, std::size_t,
                                      std::size_t) {
    EXPECT_TRUE(parallel::in_parallel_region());
    parallel::parallel_for(0, 4, 1, [&](std::size_t, std::size_t,
                                        std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
  EXPECT_FALSE(parallel::in_parallel_region());
}

TEST(SubstreamSeed, DistinctPerEpochAndChunk) {
  const std::uint64_t base = substream_seed(0xD1A, 0, 0);
  EXPECT_NE(base, substream_seed(0xD1A, 0, 1));
  EXPECT_NE(base, substream_seed(0xD1A, 1, 0));
  EXPECT_NE(base, substream_seed(0xD1B, 0, 0));
  EXPECT_EQ(base, substream_seed(0xD1A, 0, 0));
}

// ------------------------------------------------- determinism guarantees

circuit::SwapErrorStats run_mc(std::size_t threads) {
  parallel::set_threads(threads);
  circuit::SwapMonteCarlo mc;  // default seed
  // Two runs: the second exercises the epoch separation as well.
  (void)mc.run(0.10, 30000);
  return mc.run(0.20, 30000);
}

TEST(Determinism, SwapMonteCarloIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto serial = run_mc(1);
  const auto threaded = run_mc(8);
  EXPECT_EQ(serial.copy_errors, threaded.copy_errors);
  EXPECT_EQ(serial.swap_errors, threaded.swap_errors);
  EXPECT_GT(serial.swap_errors, 0u) << "±20% should produce errors";
}

struct ConvRun {
  nn::Tensor y;
  nn::Tensor grad_in;
  std::vector<float> dw;
};

ConvRun run_conv(std::size_t threads) {
  parallel::set_threads(threads);
  Rng rng(42);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);  // same seed -> same weights
  nn::Tensor x({4, 3, 8, 8});
  Rng data_rng(7);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  }
  ConvRun out{conv.forward(x, false), nn::Tensor(), {}};
  nn::Tensor dy(out.y.shape());
  for (std::size_t i = 0; i < dy.numel(); ++i) {
    dy[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
  }
  out.grad_in = conv.backward(dy);
  const auto g = conv.weight().grad.flat();
  out.dw.assign(g.begin(), g.end());
  return out;
}

TEST(Determinism, Conv2dForwardBackwardIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const ConvRun serial = run_conv(1);
  const ConvRun threaded = run_conv(8);
  ASSERT_EQ(serial.y.numel(), threaded.y.numel());
  EXPECT_EQ(std::memcmp(serial.y.data(), threaded.y.data(),
                        serial.y.numel() * sizeof(float)),
            0)
      << "forward must be bit-identical";
  EXPECT_EQ(std::memcmp(serial.grad_in.data(), threaded.grad_in.data(),
                        serial.grad_in.numel() * sizeof(float)),
            0)
      << "input gradient must be bit-identical";
  EXPECT_EQ(std::memcmp(serial.dw.data(), threaded.dw.data(),
                        serial.dw.size() * sizeof(float)),
            0)
      << "weight gradient must be bit-identical";
}

TEST(Determinism, GemmIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::size_t m = 64, k = 200, n = 600;
  Rng rng(3);
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  parallel::set_threads(1);
  std::vector<float> c1(m * n, 0.0f);
  nn::gemm(m, k, n, a.data(), b.data(), c1.data());
  parallel::set_threads(8);
  std::vector<float> c8(m * n, 0.0f);
  nn::gemm(m, k, n, a.data(), b.data(), c8.data());
  EXPECT_EQ(std::memcmp(c1.data(), c8.data(), c1.size() * sizeof(float)), 0);
}

}  // namespace
