// End-to-end integration tests: DNN weights in simulated DRAM, attacks
// realized through RowHammer, with and without DRAM-Locker.
#include <gtest/gtest.h>

#include <memory>

#include "attack/bfa.hpp"
#include "attack/hammer_gate.hpp"
#include "attack/pta.hpp"
#include "attack/weight_binding.hpp"
#include "core/system.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "nn/train.hpp"

namespace {

using namespace dl;

core::SystemConfig small_system(std::uint64_t t_rh = 1000) {
  core::SystemConfig cfg;
  cfg.geometry.banks = 2;
  cfg.geometry.subarrays_per_bank = 8;
  cfg.geometry.rows_per_subarray = 128;
  cfg.geometry.row_bytes = 8192;
  cfg.disturbance.t_rh = t_rh;
  cfg.disturbance.deterministic_bits = false;
  return cfg;
}

/// Small trained quantized model shared across integration tests.
struct TrainedModel {
  nn::Dataset sample;
  nn::Model model;
  std::unique_ptr<nn::QuantizedModel> qmodel;
  double clean_acc = 0.0;

  TrainedModel() {
    nn::SynthConfig cfg = nn::synth_cifar10();
    cfg.num_classes = 4;
    const nn::Dataset train = nn::make_synth_cifar(cfg, 128, 51);
    sample = nn::make_synth_cifar(cfg, 32, 52);
    dl::Rng rng(53);
    model.add(std::make_unique<nn::Conv2d>(3, 8, 3, 2, 1, rng));
    model.add(std::make_unique<nn::BatchNorm2d>(8));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::GlobalAvgPool>());
    model.add(std::make_unique<nn::Linear>(8, 4, rng));
    nn::SgdConfig scfg;
    scfg.epochs = 6;
    scfg.batch_size = 16;
    scfg.lr = 0.08f;
    nn::SgdTrainer trainer(model, scfg, dl::Rng(54));
    trainer.fit(train);
    qmodel = std::make_unique<nn::QuantizedModel>(model);
    clean_acc = nn::evaluate_accuracy(model, sample);
  }
};

TrainedModel& trained() {
  static TrainedModel t;
  return t;
}

TEST(Integration, WeightsSurviveDramRoundTrip) {
  TrainedModel& t = trained();
  t.qmodel->restore();
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  auto binding = sys.make_weight_binding(*space, *t.qmodel, 0x100000);
  binding.upload();
  const auto image_before = t.qmodel->serialize();
  ASSERT_TRUE(binding.sync_from_dram());
  EXPECT_EQ(t.qmodel->serialize(), image_before);
  EXPECT_NEAR(nn::evaluate_accuracy(t.model, t.sample), t.clean_acc, 1e-9);
}

TEST(Integration, WeightRowsAreTracked) {
  TrainedModel& t = trained();
  t.qmodel->restore();
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  auto binding = sys.make_weight_binding(*space, *t.qmodel, 0x100000);
  binding.upload();
  const auto rows = binding.weight_rows();
  EXPECT_FALSE(rows.empty());
  // ~1k weights fit in one or two 8 KiB rows.
  EXPECT_LE(rows.size(), 3u);
  // First weight's row must be among them.
  const auto r0 = binding.row_of_weight(0, 0);
  EXPECT_NE(std::find(rows.begin(), rows.end(), r0), rows.end());
}

TEST(Integration, HammerGateRealizesFlipsWithoutDefense) {
  TrainedModel& t = trained();
  t.qmodel->restore();
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  auto binding = sys.make_weight_binding(*space, *t.qmodel, 0x100000);
  binding.upload();

  auto gate = sys.make_hammer_gate(binding, /*act_budget=*/10000);
  attack::BfaConfig cfg;
  cfg.max_iterations = 6;
  cfg.layers_evaluated = 2;
  attack::ProgressiveBitSearch pbs(t.model, *t.qmodel, cfg);
  // The model state must track DRAM: sync before measuring.
  const attack::BfaResult res = pbs.run(
      t.sample, [&](const nn::BitAddress& a) { return gate(a); });
  EXPECT_GT(res.flips_landed, 0u);
  EXPECT_GT(gate.total_acts(), 0u);
  EXPECT_EQ(gate.total_denied(), 0u);

  ASSERT_TRUE(binding.sync_from_dram());
  const double post_acc = nn::evaluate_accuracy(t.model, t.sample);
  EXPECT_LT(post_acc, t.clean_acc);
  t.qmodel->restore();
}

TEST(Integration, DramLockerBlocksHammeredFlips) {
  TrainedModel& t = trained();
  t.qmodel->restore();
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  auto binding = sys.make_weight_binding(*space, *t.qmodel, 0x100000);
  binding.upload();

  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 2;
  lcfg.reserved_rows_per_subarray = 8;
  // Page-table rows share the weight rows' neighbourhood in this tight
  // layout and get locked too; kSwapBack keeps the original aggressor-
  // adjacent rows locked across the page walker's unlock/relock cycles
  // (see RelockNewLocationReopensSurface below for the alternative).
  lcfg.relock_policy = defense::RelockPolicy::kSwapBack;
  auto& locker = sys.enable_locker(lcfg);
  EXPECT_GT(binding.protect_all(locker), 0u);

  auto gate = sys.make_hammer_gate(binding, /*act_budget=*/5000);
  attack::BfaConfig cfg;
  cfg.max_iterations = 5;
  cfg.layers_evaluated = 2;
  attack::ProgressiveBitSearch pbs(t.model, *t.qmodel, cfg);
  const attack::BfaResult res = pbs.run(
      t.sample, [&](const nn::BitAddress& a) { return gate(a); });
  EXPECT_EQ(res.flips_landed, 0u);
  EXPECT_GT(gate.total_denied(), 0u);
  EXPECT_EQ(locker.stats().denied, gate.total_denied());

  ASSERT_TRUE(binding.sync_from_dram());
  EXPECT_NEAR(nn::evaluate_accuracy(t.model, t.sample), t.clean_acc, 1e-9);
  t.qmodel->restore();
}

TEST(Integration, VictimStillReadsWeightsUnderProtection) {
  TrainedModel& t = trained();
  t.qmodel->restore();
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  auto binding = sys.make_weight_binding(*space, *t.qmodel, 0x100000);
  binding.upload();
  auto& locker = sys.enable_locker();
  binding.protect_all(locker);
  // Inference path: weights stream from DRAM with no denials (the weight
  // rows themselves are never locked).
  ASSERT_TRUE(binding.sync_from_dram());
  EXPECT_NEAR(nn::evaluate_accuracy(t.model, t.sample), t.clean_acc, 1e-9);
}

TEST(Integration, RelockNewLocationReopensSurface) {
  // Reproduction finding: under the paper's Fig. 4(d) re-lock policy the
  // lock *follows the data*, and after one full unlock/relock/unlock cycle
  // the free-pool rotation puts the data back at its original physical row
  // while the (stale) lock still points at the pool row.  At that moment
  // the original aggressor-adjacent row is unlocked and hammerable again.
  // The kSwapBack policy does not exhibit this window.  The window only
  // lasts until the next relock tick, so an ultra-low threshold part
  // (T_RH = 20) makes the exposure observable deterministically.
  core::SystemConfig scfg = small_system(/*t_rh=*/20);
  core::DramLockerSystem sys(scfg);

  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 1;
  lcfg.relock_rw_interval = 50;
  lcfg.relock_policy = defense::RelockPolicy::kRelockNewLocation;
  auto& locker = sys.enable_locker(lcfg);
  locker.protect_data_row(10);  // locks rows 9 and 11

  std::array<std::uint8_t, 1> buf{};
  // Legitimate unlock of row 9, then enough traffic to trigger the relock.
  ASSERT_TRUE(sys.read(sys.row_base(9), buf, true).granted);
  for (int i = 0; i < 60; ++i) sys.read(sys.row_base(40), buf);
  ASSERT_EQ(locker.stats().relocks, 1u);
  // Second unlock: pool rotation swaps the data back to physical row 9,
  // which is now unlocked (the lock stayed at the pool row).
  ASSERT_TRUE(sys.read(sys.row_base(9), buf, true).granted);
  EXPECT_EQ(sys.channel().indirection().to_physical(9), 9u);
  EXPECT_FALSE(locker.lock_table().is_locked(9));

  // The attacker's original aggressor addresses work again: row 11 is
  // still locked, but the double-sided pattern's row-9 activations land —
  // within the window before the next relock tick re-locks the row.
  const auto res = sys.hammer_attack(
      10, rowhammer::HammerPattern::kDoubleSided, /*act_budget=*/48,
      /*stop_after_flips=*/1);
  EXPECT_GT(res.granted_acts, 0u);
  EXPECT_GT(res.flips_in_victim, 0u);
}

TEST(Integration, PtaRedirectsWithoutDefense) {
  core::DramLockerSystem sys(small_system(500));
  auto victim_space = sys.make_address_space();
  auto attacker_space = sys.make_address_space();

  // The victim owns a frame with known content.
  victim_space->map_contiguous(0x200000, 1);
  const auto victim_pte = victim_space->walk(0x200000);
  ASSERT_TRUE(victim_pte.has_value());
  const std::array<std::uint8_t, 4> secret{0xDE, 0xAD, 0xBE, 0xEF};
  victim_space->write(0x200000, secret);

  attack::PtaConfig pcfg;
  pcfg.act_budget = 100000;
  auto pta = sys.make_page_table_attack(pcfg);
  const std::array<std::uint8_t, 4> payload{1, 2, 3, 4};
  const auto res = pta.run(*attacker_space, victim_pte->pfn, payload);
  EXPECT_TRUE(res.redirected);
  EXPECT_TRUE(res.payload_written);
  // Victim data was overwritten through the attacker's mapping.
  std::array<std::uint8_t, 4> readback{};
  victim_space->read(0x200000, readback);
  EXPECT_EQ(readback, payload);
}

TEST(Integration, DramLockerBlocksPta) {
  core::DramLockerSystem sys(small_system(500));
  auto victim_space = sys.make_address_space();
  auto attacker_space = sys.make_address_space();
  victim_space->map_contiguous(0x200000, 1);
  const auto victim_pte = victim_space->walk(0x200000);
  const std::array<std::uint8_t, 4> secret{0xDE, 0xAD, 0xBE, 0xEF};
  victim_space->write(0x200000, secret);

  attack::PtaConfig pcfg;
  pcfg.act_budget = 50000;
  auto pta = sys.make_page_table_attack(pcfg);
  // Defender: prepare() exposes where the attacker's PTE lives; the kernel
  // protects page-table rows wholesale (here: that row).
  ASSERT_TRUE(pta.prepare(*attacker_space, victim_pte->pfn));
  auto& locker = sys.enable_locker();
  locker.protect_data_row(*pta.pte_row());

  const std::array<std::uint8_t, 4> payload{1, 2, 3, 4};
  const auto res = pta.run(*attacker_space, victim_pte->pfn, payload);
  EXPECT_FALSE(res.redirected);
  EXPECT_EQ(res.pte_flips, 0u);
  EXPECT_GT(res.acts_denied, 0u);
  std::array<std::uint8_t, 4> readback{};
  victim_space->read(0x200000, readback);
  EXPECT_EQ(readback, secret);
}

TEST(Integration, ResidualGateMatchesConfiguredRate) {
  attack::ResidualFlipGate gate(0.096, dl::Rng(99));
  nn::BitAddress addr;
  for (int i = 0; i < 20000; ++i) gate(addr);
  const double rate =
      static_cast<double>(gate.landed()) / static_cast<double>(gate.attempts());
  EXPECT_NEAR(rate, 0.096, 0.01);
}

TEST(Integration, SystemProtectVirtualRange) {
  core::DramLockerSystem sys(small_system());
  auto space = sys.make_address_space();
  space->map_contiguous(0x300000, 4);
  sys.enable_locker();
  const std::size_t locked =
      sys.protect_physical_range(0, 1);  // protect row 0's neighbourhood
  EXPECT_GT(locked, 0u);
  const std::size_t vlocked =
      sys.protect_virtual_range(*space, 0x300000, 4 * sys::kPageBytes);
  EXPECT_GT(vlocked, 0u);
}

TEST(Integration, ShadowSystemWiring) {
  core::DramLockerSystem sys(small_system(200));
  auto& shadow = sys.enable_shadow({.threshold = 200, .table_entries = 100});
  for (int i = 0; i < 150; ++i) {
    sys.hammer(sys.row_base(20));
  }
  EXPECT_GE(shadow.shuffles(), 1u);
}

}  // namespace
