// Tests for the deterministic fault-injection layer (src/faults): spec
// validation, the ACT-driven cadence, each fault class's observable effect,
// and same-seed reproducibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "defense/lock_table.hpp"
#include "dram/controller.hpp"
#include "faults/faults.hpp"
#include "integrity/checksum.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace dl;
using dram::Controller;
using dram::Geometry;
using dram::GlobalRowId;
using faults::FaultInjector;
using faults::FaultSpec;

Geometry small_geometry() {
  Geometry g;
  g.channels = 1;
  g.ranks = 1;
  g.banks = 2;
  g.subarrays_per_bank = 4;
  g.rows_per_subarray = 64;
  g.row_bytes = 256;
  return g;  // 512 rows
}

// Drives the injector's cadence directly: each call is one physical ACT.
void fire_acts(FaultInjector& injector, std::uint64_t n,
               GlobalRowId row = 0) {
  for (std::uint64_t i = 0; i < n; ++i) injector.on_activate(row, 0);
}

TEST(FaultSpec, RejectsRatesOutsideUnitInterval) {
  FaultSpec spec;
  spec.retention_rate = 1.5;
  EXPECT_THROW(spec.validate(), dl::Error);
  spec.retention_rate = 0.0;
  spec.checksum_fault_rate = -0.1;
  EXPECT_THROW(spec.validate(), dl::Error);
  spec.checksum_fault_rate = 1.0;  // inclusive bounds are fine
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec, EnabledNeedsCadenceAndAFaultClass) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.period_acts = 16;
  EXPECT_FALSE(spec.enabled());  // cadence alone is not a fault model
  spec.transient_rate = 0.5;
  EXPECT_TRUE(spec.enabled());
  spec.period_acts = 0;
  EXPECT_FALSE(spec.enabled());
}

TEST(FaultInjector, RejectsZeroPeriodAndOutOfRangeTarget) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  EXPECT_THROW(FaultInjector(ctrl, spec), dl::Error);  // period_acts == 0
  spec.period_acts = 8;
  spec.target_base = 500;
  spec.target_rows = 100;  // 500 + 100 > 512 total rows
  EXPECT_THROW(FaultInjector(ctrl, spec), dl::Error);
  spec.target_rows = 12;
  EXPECT_NO_THROW(FaultInjector(ctrl, spec));
}

TEST(FaultInjector, CadenceFiresEveryPeriodActs) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 4;
  spec.transient_rate = 1.0;
  FaultInjector injector(ctrl, spec);
  fire_acts(injector, 7);
  EXPECT_EQ(injector.stats().events, 1u);
  fire_acts(injector, 1);
  EXPECT_EQ(injector.stats().events, 2u);
  EXPECT_EQ(ctrl.counters().value(dram::Counter::kFaultEvents), 2.0);
}

TEST(FaultInjector, SameSeedSameFaultStream) {
  FaultSpec spec;
  spec.seed = 99;
  spec.period_acts = 2;
  spec.retention_rate = 0.5;
  spec.transient_rate = 0.5;
  spec.stuck_cells = 3;
  spec.remap_fault_rate = 0.25;
  Controller a(small_geometry(), dram::ddr4_2400());
  Controller b(small_geometry(), dram::ddr4_2400());
  FaultInjector ia(a, spec);
  FaultInjector ib(b, spec);
  fire_acts(ia, 200);
  fire_acts(ib, 200);
  EXPECT_EQ(ia.stats().events, ib.stats().events);
  EXPECT_EQ(ia.stats().retention_faults, ib.stats().retention_faults);
  EXPECT_EQ(ia.stats().transient_faults, ib.stats().transient_faults);
  EXPECT_EQ(ia.stats().stuck_overrides, ib.stats().stuck_overrides);
  EXPECT_EQ(ia.stats().remap_faults, ib.stats().remap_faults);
  // The mutated DRAM state matches row for row, byte for byte.
  const auto& g = a.geometry();
  for (GlobalRowId row = 0; row < g.total_rows(); ++row) {
    for (std::uint32_t byte = 0; byte < g.row_bytes; byte += 37) {
      ASSERT_EQ(a.data().read_byte(row, byte), b.data().read_byte(row, byte))
          << "row " << row << " byte " << byte;
    }
  }
}

TEST(FaultInjector, RetentionOnlyDischargesSetBits) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 1;
  spec.retention_rate = 1.0;
  spec.target_base = 8;
  spec.target_rows = 4;
  // Saturate the target region so every retention draw finds a set bit.
  const std::vector<std::uint8_t> ones(ctrl.geometry().row_bytes, 0xFF);
  for (GlobalRowId row = 8; row < 12; ++row) {
    ctrl.data().write(row, 0, ones);
  }
  FaultInjector injector(ctrl, spec);
  fire_acts(injector, 50);
  EXPECT_EQ(injector.stats().retention_faults, 50u);
  std::uint64_t cleared = 0;
  for (GlobalRowId row = 8; row < 12; ++row) {
    for (std::uint32_t byte = 0; byte < ctrl.geometry().row_bytes; ++byte) {
      cleared += static_cast<std::uint64_t>(
          __builtin_popcount(0xFFu ^ ctrl.data().read_byte(row, byte)));
    }
  }
  EXPECT_EQ(cleared, 50u);  // each fault discharged exactly one bit to 0
}

TEST(FaultInjector, StuckCellsReassertAfterWrites) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 1;
  spec.stuck_cells = 4;
  spec.target_base = 0;
  spec.target_rows = 8;
  FaultInjector injector(ctrl, spec);
  EXPECT_EQ(injector.stats().stuck_cells, 4u);
  const std::uint64_t after_ctor = injector.stats().stuck_overrides;
  // Overwrite the whole target region with both fill levels; each stuck
  // cell disagrees with exactly one of them, so the two injection events
  // re-assert every cell exactly once in total.
  const std::vector<std::uint8_t> zeros(ctrl.geometry().row_bytes, 0x00);
  const std::vector<std::uint8_t> ones(ctrl.geometry().row_bytes, 0xFF);
  for (GlobalRowId row = 0; row < 8; ++row) ctrl.data().write(row, 0, zeros);
  fire_acts(injector, 1);
  for (GlobalRowId row = 0; row < 8; ++row) ctrl.data().write(row, 0, ones);
  fire_acts(injector, 1);
  EXPECT_EQ(injector.stats().stuck_overrides - after_ctor, 4u);
}

TEST(FaultInjector, LockEvictionDropsOneLockedRow) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 1;
  spec.lock_evict_rate = 1.0;
  FaultInjector injector(ctrl, spec);
  // No table attached: the event draws but cannot act.
  fire_acts(injector, 1);
  EXPECT_EQ(injector.stats().lock_evictions, 0u);
  defense::LockTable table(16);
  for (GlobalRowId row = 10; row < 15; ++row) ASSERT_TRUE(table.lock(row));
  injector.attach_lock_table(&table);
  fire_acts(injector, 3);
  EXPECT_EQ(injector.stats().lock_evictions, 3u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FaultInjector, RemapFaultSwapsWithinTargetAndBumpsEpoch) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 1;
  spec.remap_fault_rate = 1.0;
  spec.target_base = 32;
  spec.target_rows = 16;
  FaultInjector injector(ctrl, spec);
  const std::uint64_t epoch0 = ctrl.indirection().epoch();
  fire_acts(injector, 32);  // some draws may pick a == b and skip
  const auto& stats = injector.stats();
  ASSERT_GT(stats.remap_faults, 0u);
  EXPECT_GT(ctrl.indirection().epoch(), epoch0);
  // The permutation invariant holds and only target rows are displaced.
  for (GlobalRowId logical = 0; logical < ctrl.geometry().total_rows();
       ++logical) {
    const GlobalRowId phys = ctrl.indirection().to_physical(logical);
    EXPECT_EQ(ctrl.indirection().to_logical(phys), logical);
    if (logical < 32 || logical >= 48) {
      EXPECT_EQ(phys, logical);
    }
  }
}

TEST(FaultInjector, ChecksumFaultCorruptsAttachedStorage) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 1;
  spec.checksum_fault_rate = 1.0;
  std::vector<std::uint8_t> image(128);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i * 13 + 7);
  }
  integrity::Config cfg;
  cfg.group_size = 32;
  integrity::BlockChecksums sums(cfg, image);
  FaultInjector injector(ctrl, spec);
  injector.attach_checksums(&sums);
  fire_acts(injector, 1);
  EXPECT_EQ(injector.stats().checksum_faults, 1u);
  // The data is untouched, so the corrupted group diagnoses as a checksum
  // storage fault (the verifier's checksum-repair path).
  std::size_t corrupt_groups = 0;
  for (std::size_t g = 0; g < sums.group_count(); ++g) {
    const auto [off, len] = sums.group_range(g);
    const auto d = sums.diagnose(
        g, std::span<const std::uint8_t>(image).subspan(off, len));
    if (d.state == integrity::Diagnosis::State::kChecksumCorrupt) {
      ++corrupt_groups;
    }
  }
  EXPECT_EQ(corrupt_groups, 1u);
}

// -------------------------------------------------------- chaos mutators

TEST(FaultInjector, SetPeriodActsTightensTheCadence) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 64;
  spec.transient_rate = 1.0;
  FaultInjector injector(ctrl, spec);
  fire_acts(injector, 16);
  EXPECT_EQ(injector.stats().events, 0u);
  injector.set_period_acts(4);  // chaos storm ramp
  fire_acts(injector, 16);
  EXPECT_GT(injector.stats().events, 0u);
  EXPECT_THROW(injector.set_period_acts(0), dl::Error);
}

TEST(FaultInjector, AddStuckCellsAssertsImmediately) {
  Controller ctrl(small_geometry(), dram::ddr4_2400());
  FaultSpec spec;
  spec.period_acts = 8;
  spec.transient_rate = 0.1;
  spec.target_base = 4;
  spec.target_rows = 8;
  FaultInjector injector(ctrl, spec);
  const std::uint64_t before = injector.stats().stuck_cells;
  injector.add_stuck_cells(3);
  EXPECT_EQ(injector.stats().stuck_cells, before + 3);
}

// --------------------------------------------- timing-model independence

TEST(FaultInjector, DrawSequenceIsIdenticalWithTimingOnAndOff) {
  // The injector consumes its own private RNG stream in ACT order, so the
  // cycle-approximate timing engine must not change which faults are
  // drawn.  The workload stays shorter than tREFI (7.8 us): a scheduled
  // REF would legitimately shift protocol *time*, and this test pins the
  // draw *sequence*, not the clock.
  scenario::HammerCampaign base;
  base.name = "faults-timing";
  base.env.geometry.channels = 1;
  base.env.geometry.ranks = 1;
  base.env.geometry.banks = 2;
  base.env.geometry.subarrays_per_bank = 4;
  base.env.geometry.rows_per_subarray = 128;
  base.env.geometry.row_bytes = 4096;
  base.env.disturbance.t_rh = 1000;
  base.env.faults.period_acts = 8;
  base.env.faults.transient_rate = 0.5;
  base.env.faults.retention_rate = 0.5;
  base.env.faults.stuck_cells = 2;
  base.env.faults.target_base = 16;
  base.env.faults.target_rows = 16;
  base.attack.victim_row = 20;
  base.attack.act_budget = 96;  // ~4.4 us of ACTs: under one tREFI
  base.cycles = 1;

  scenario::HammerCampaign timed = base;
  timed.env.timing_spec.enabled = true;

  const auto analytic = scenario::run_one(base);
  const auto cycle_approx = scenario::run_one(timed);
  ASSERT_EQ(analytic.status, scenario::CampaignStatus::kOk);
  ASSERT_EQ(cycle_approx.status, scenario::CampaignStatus::kOk);
  EXPECT_TRUE(cycle_approx.timed);

  EXPECT_EQ(analytic.faults.events, cycle_approx.faults.events);
  EXPECT_EQ(analytic.faults.retention_faults,
            cycle_approx.faults.retention_faults);
  EXPECT_EQ(analytic.faults.transient_faults,
            cycle_approx.faults.transient_faults);
  EXPECT_EQ(analytic.faults.stuck_cells, cycle_approx.faults.stuck_cells);
  EXPECT_EQ(analytic.faults.stuck_overrides,
            cycle_approx.faults.stuck_overrides);
  EXPECT_EQ(analytic.faults.lock_evictions,
            cycle_approx.faults.lock_evictions);
  EXPECT_EQ(analytic.faults.remap_faults, cycle_approx.faults.remap_faults);
  EXPECT_EQ(analytic.faults.checksum_faults,
            cycle_approx.faults.checksum_faults);
}

}  // namespace
