// Tests for the counter-based tracker baselines.
#include <gtest/gtest.h>

#include "defense/trackers.hpp"
#include "rowhammer/disturbance.hpp"

namespace {

using namespace dl::defense;
using namespace dl::dram;

class TrackerTest : public ::testing::Test {
 protected:
  Geometry g = Geometry::tiny();
  Controller ctrl{g, ddr4_2400()};

  void hammer_n(GlobalRowId row, int n) {
    for (int i = 0; i < n; ++i) ctrl.hammer(ctrl.mapper().row_base(row));
  }
};

TEST_F(TrackerTest, CounterPerRowCountsExactly) {
  CounterPerRow cpr(ctrl, /*threshold=*/100, /*radius=*/1);
  ctrl.add_listener(&cpr);
  hammer_n(20, 42);
  EXPECT_EQ(cpr.count(20), 42u);
  EXPECT_EQ(cpr.stats().mitigations, 0u);
}

TEST_F(TrackerTest, CounterPerRowRefreshesAtThreshold) {
  CounterPerRow cpr(ctrl, 100, 1);
  ctrl.add_listener(&cpr);
  hammer_n(20, 100);
  EXPECT_EQ(cpr.stats().mitigations, 1u);
  EXPECT_EQ(cpr.stats().victim_refreshes, 2u);
  EXPECT_EQ(cpr.count(20), 0u);  // counter reset after mitigation
}

TEST_F(TrackerTest, CounterPerRowPreventsFlips) {
  dl::rowhammer::DisturbanceConfig dcfg;
  dcfg.t_rh = 200;
  dcfg.distance2_weight = 0.0;  // classic distance-1 RowHammer
  dl::rowhammer::DisturbanceModel model(ctrl, dcfg, dl::Rng(1));
  ctrl.add_listener(&model);
  // Mitigation threshold at half the flip threshold: victims always get
  // refreshed before the disturbance crosses T_RH.
  CounterPerRow cpr(ctrl, 100, 1);
  ctrl.add_listener(&cpr);
  hammer_n(20, 5000);
  EXPECT_EQ(model.total_flips(), 0u);
  EXPECT_GE(cpr.stats().mitigations, 40u);
}

TEST_F(TrackerTest, HalfDoubleDefeatsRadiusOneRefresh) {
  // Kogler et al.'s Half-Double observation, reproduced: a radius-1
  // victim-refresh defense never refreshes the distance-2 victims, so the
  // coupling leaks through; a radius-2 configuration closes the gap.
  dl::rowhammer::DisturbanceConfig dcfg;
  dcfg.t_rh = 200;
  dcfg.distance2_weight = 0.25;
  dl::rowhammer::DisturbanceModel model(ctrl, dcfg, dl::Rng(1));
  ctrl.add_listener(&model);
  CounterPerRow cpr(ctrl, 100, /*radius=*/1);
  ctrl.add_listener(&cpr);
  hammer_n(20, 5000);
  EXPECT_GT(model.total_flips(), 0u);  // distance-2 victims flipped

  // Fresh controller with radius-2 mitigation: no flips.
  Controller ctrl2(g, ddr4_2400());
  dl::rowhammer::DisturbanceModel model2(ctrl2, dcfg, dl::Rng(1));
  ctrl2.add_listener(&model2);
  CounterPerRow cpr2(ctrl2, 100, /*radius=*/2);
  ctrl2.add_listener(&cpr2);
  for (int i = 0; i < 5000; ++i) ctrl2.hammer(ctrl2.mapper().row_base(20));
  EXPECT_EQ(model2.total_flips(), 0u);
}

TEST_F(TrackerTest, CounterPerRowWindowReset) {
  CounterPerRow cpr(ctrl, 100, 1);
  ctrl.add_listener(&cpr);
  hammer_n(20, 60);
  ctrl.advance_time(ctrl.timing().tREFW);
  hammer_n(20, 60);
  EXPECT_EQ(cpr.stats().mitigations, 0u);
}

TEST_F(TrackerTest, GrapheneCatchesHeavyHitter) {
  Graphene graphene(ctrl, /*threshold=*/100, /*entries=*/4, /*radius=*/1);
  ctrl.add_listener(&graphene);
  // Interleave a heavy hitter with light noise rows.
  for (int i = 0; i < 150; ++i) {
    ctrl.hammer(ctrl.mapper().row_base(20));
    if (i % 3 == 0) ctrl.hammer(ctrl.mapper().row_base(30 + (i % 7)));
  }
  EXPECT_GE(graphene.stats().mitigations, 1u);
  EXPECT_LE(graphene.table_size(), 4u);
}

TEST_F(TrackerTest, GrapheneNeverUndercounts) {
  // Misra-Gries guarantee: a tracked count is an upper bound of the true
  // count minus the spill, so a row hammered `threshold` times in
  // isolation must always be mitigated.
  Graphene graphene(ctrl, 64, 2, 1);
  ctrl.add_listener(&graphene);
  hammer_n(20, 64);
  EXPECT_GE(graphene.stats().mitigations, 1u);
}

TEST_F(TrackerTest, CounterTreeRefinesHotGroups) {
  CounterTree tree(ctrl, /*threshold=*/100, /*group_rows=*/16, /*radius=*/1);
  ctrl.add_listener(&tree);
  hammer_n(20, 200);
  EXPECT_GE(tree.refined_groups(), 1u);
  EXPECT_GE(tree.stats().mitigations, 1u);
}

TEST_F(TrackerTest, CounterTreeFiresAtThresholdNotBefore) {
  // Regression: the refined per-row counters used to mitigate at
  // threshold/2.  The coarse group counter refines at threshold/2 (50
  // ACTs), then the exact per-row counter must see a further full
  // `threshold` ACTs before the first mitigation: 50 + 100 = 150 total.
  CounterTree tree(ctrl, /*threshold=*/100, /*group_rows=*/16, /*radius=*/1);
  ctrl.add_listener(&tree);
  hammer_n(20, 149);
  EXPECT_EQ(tree.refined_groups(), 1u);
  EXPECT_EQ(tree.stats().mitigations, 0u);
  hammer_n(20, 1);
  EXPECT_EQ(tree.stats().mitigations, 1u);
  EXPECT_EQ(tree.stats().victim_refreshes, 2u);
}

TEST_F(TrackerTest, HydraFiresAtThresholdNotBefore) {
  // Regression: same off-by-half bug in Hydra's materialized per-row
  // counters.  Group spills to DRAM at threshold/2, then the per-row
  // counter needs the full threshold: 50 + 100 = 150 ACTs to mitigate.
  Hydra hydra(ctrl, /*threshold=*/100, /*group_rows=*/16, /*radius=*/1);
  ctrl.add_listener(&hydra);
  hammer_n(20, 149);
  EXPECT_GT(hydra.dram_counter_accesses(), 0u);
  EXPECT_EQ(hydra.stats().mitigations, 0u);
  hammer_n(20, 1);
  EXPECT_EQ(hydra.stats().mitigations, 1u);
  EXPECT_EQ(hydra.stats().victim_refreshes, 2u);
}

TEST_F(TrackerTest, EdgeRowCountsOnlyIssuedRefreshes) {
  // Regression: victim_refreshes used to add 2*radius before the bounds
  // check, counting refreshes that were never issued at subarray edges.
  // Row 0 has no rows below it: radius 2 can only refresh rows 1 and 2.
  CounterPerRow cpr(ctrl, /*threshold=*/100, /*radius=*/2);
  ctrl.add_listener(&cpr);
  hammer_n(0, 100);
  EXPECT_EQ(cpr.stats().mitigations, 1u);
  EXPECT_EQ(cpr.stats().victim_refreshes, 2u);

  // A mid-subarray aggressor still counts the full 2*radius.
  hammer_n(20, 100);
  EXPECT_EQ(cpr.stats().mitigations, 2u);
  EXPECT_EQ(cpr.stats().victim_refreshes, 6u);
}

TEST_F(TrackerTest, EdgeRowTrrCountsOnlyIssuedRefreshes) {
  TrrSampler trr(ctrl, /*sample_probability=*/1.0, /*radius=*/2,
                 dl::Rng(11));
  ctrl.add_listener(&trr);
  hammer_n(0, 1);  // sampled with certainty; only rows 1 and 2 exist
  EXPECT_EQ(trr.stats().mitigations, 1u);
  EXPECT_EQ(trr.stats().victim_refreshes, 2u);
}

TEST_F(TrackerTest, RefreshNeighborsReturnsIssuedCount) {
  EXPECT_EQ(refresh_neighbors(ctrl, 20, 2), 4u);
  EXPECT_EQ(refresh_neighbors(ctrl, 0, 2), 2u);   // rows 1, 2 only
  EXPECT_EQ(refresh_neighbors(ctrl, 1, 2), 3u);   // rows 0, 2, 3
  const auto last = g.rows_per_subarray - 1;
  EXPECT_EQ(refresh_neighbors(ctrl, last, 2), 2u);
}

TEST_F(TrackerTest, CounterTreeColdGroupsStayCoarse) {
  CounterTree tree(ctrl, 100, 16, 1);
  ctrl.add_listener(&tree);
  hammer_n(20, 10);
  hammer_n(40, 10);
  EXPECT_EQ(tree.refined_groups(), 0u);
  EXPECT_EQ(tree.stats().mitigations, 0u);
}

TEST_F(TrackerTest, HydraSpillsHotGroupsToDram) {
  Hydra hydra(ctrl, /*threshold=*/100, /*group_rows=*/16, /*radius=*/1);
  ctrl.add_listener(&hydra);
  hammer_n(20, 200);
  EXPECT_GT(hydra.dram_counter_accesses(), 0u);
  EXPECT_GE(hydra.stats().mitigations, 1u);
}

TEST_F(TrackerTest, HydraColdGroupsCostNothing) {
  Hydra hydra(ctrl, 100, 16, 1);
  ctrl.add_listener(&hydra);
  hammer_n(20, 10);
  EXPECT_EQ(hydra.dram_counter_accesses(), 0u);
}

TEST_F(TrackerTest, TrrSamplerMitigatesProbabilistically) {
  TrrSampler trr(ctrl, /*sample_probability=*/0.05, /*radius=*/1,
                 dl::Rng(11));
  ctrl.add_listener(&trr);
  hammer_n(20, 2000);
  // ~100 expected mitigations at p=0.05.
  EXPECT_GT(trr.stats().mitigations, 50u);
  EXPECT_LT(trr.stats().mitigations, 200u);
}

TEST_F(TrackerTest, RefreshNeighborsResetsDisturbance) {
  dl::rowhammer::DisturbanceConfig dcfg;
  dcfg.t_rh = 1000;
  dl::rowhammer::DisturbanceModel model(ctrl, dcfg, dl::Rng(1));
  ctrl.add_listener(&model);
  hammer_n(20, 500);
  EXPECT_GT(model.disturbance(19), 0.0);
  refresh_neighbors(ctrl, 20, 1);
  EXPECT_EQ(model.disturbance(19), 0.0);
  EXPECT_EQ(model.disturbance(21), 0.0);
}

}  // namespace
