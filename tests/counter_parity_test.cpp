// Counter parity: the enum-indexed CounterBlock is the authoritative
// hot-path counter store, exported into the legacy string-keyed StatSet on
// demand.  These tests pin the compatibility contract across the three
// campaign shapes the repo runs — a hammer campaign (attacker + DRAM-Locker
// gate + SWAP sequencer), a multi-tenant traffic campaign, and an integrity
// campaign (DRAM scrubber) — plus the CounterBlock unit semantics:
//
//   * every legacy StatSet key still appears, with identical values;
//   * entry order equals first-touch order (what per-call StatSet::add
//     produced before the refactor);
//   * counters that never fired stay absent;
//   * keys set externally on the StatSet survive re-exports.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "defense/dram_locker.hpp"
#include "defense/row_swap.hpp"
#include "dram/controller.hpp"
#include "dram/counters.hpp"
#include "integrity/scrubber.hpp"
#include "traffic/engine.hpp"

namespace {

using namespace dl;
using dram::Controller;
using dram::Counter;
using dram::CounterBlock;

/// Every StatSet entry must mirror the counter block: same key, same
/// value, same (first-touch) order, nothing extra and nothing missing.
void expect_parity(const Controller& ctrl) {
  const auto& entries = ctrl.stats().entries();
  const CounterBlock& c = ctrl.counters();
  ASSERT_EQ(entries.size(), c.touched_count());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Counter counter = c.touched_at(i);
    EXPECT_EQ(entries[i].first, dram::to_string(counter)) << "entry " << i;
    EXPECT_EQ(entries[i].second, c.value(counter)) << entries[i].first;
  }
}

TEST(CounterBlock, FirstTouchOrderAndValues) {
  CounterBlock c;
  c.add(Counter::kActivates);
  c.add(Counter::kHammerActs, 3.0);
  c.add(Counter::kActivates, 2.0);
  EXPECT_EQ(c.touched_count(), 2u);
  EXPECT_EQ(c.touched_at(0), Counter::kActivates);
  EXPECT_EQ(c.touched_at(1), Counter::kHammerActs);
  EXPECT_EQ(c.value(Counter::kActivates), 3.0);
  EXPECT_EQ(c.value(Counter::kHammerActs), 3.0);
  EXPECT_FALSE(c.touched(Counter::kReads));
  EXPECT_EQ(c.value(Counter::kReads), 0.0);
}

TEST(CounterBlock, ExportIsIdempotentAndPreservesExternalKeys) {
  CounterBlock c;
  c.add(Counter::kReads, 7.0);
  StatSet s;
  s.add("external_key", 42.0);  // added by code outside the controller
  c.export_to(s);
  c.export_to(s);  // repeated export must not duplicate or drift
  EXPECT_EQ(s.entries().size(), 2u);
  EXPECT_EQ(s.get("external_key"), 42.0);
  EXPECT_EQ(s.get("reads"), 7.0);
  c.add(Counter::kReads);
  c.export_to(s);
  EXPECT_EQ(s.get("reads"), 8.0);
  c.reset();
  EXPECT_EQ(c.touched_count(), 0u);
  EXPECT_EQ(c.value(Counter::kReads), 0.0);
}

TEST(CounterParity, HammerCampaign) {
  // Attacker hammers next to a protected row through the DRAM-Locker gate;
  // the privileged program triggers an unlock SWAP (sequencer µprogram).
  Controller ctrl(dram::Geometry::tiny(), dram::ddr4_2400());
  defense::DramLockerConfig cfg;
  cfg.reserved_rows_per_subarray = 4;
  defense::DramLocker locker(ctrl, cfg, Rng(5));
  ctrl.set_gate(&locker);
  locker.protect_data_row(20);

  std::array<std::uint8_t, 8> buf{};
  ctrl.read(ctrl.mapper().row_base(40), buf);                // allowed read
  for (int i = 0; i < 16; ++i) {
    ctrl.hammer(ctrl.mapper().row_base(19));                 // locked: denied
    ctrl.hammer(ctrl.mapper().row_base(30));                 // unlocked row
  }
  // Privileged access to a locked row: unlock SWAP through the sequencer.
  ctrl.read(ctrl.mapper().row_base(19), buf, /*can_unlock=*/true);

  expect_parity(ctrl);
  const auto& stats = ctrl.stats();
  EXPECT_EQ(stats.get("denied_accesses"), 16.0);
  EXPECT_EQ(stats.get("hammer_acts"), 16.0);
  EXPECT_EQ(stats.get("rowclones"), 3.0);           // one 3-copy SWAP
  EXPECT_EQ(stats.get("sequencer_programs"), 1.0);  // typed adoption key
  EXPECT_EQ(static_cast<std::uint64_t>(stats.get("sequencer_programs")),
            locker.stats().unlock_swaps);
}

TEST(CounterParity, TrafficCampaign) {
  Controller ctrl(dram::Geometry::tiny(), dram::ddr4_2400());
  std::vector<traffic::StreamSpec> tenants = {
      traffic::StreamSpec::weight_reader(8, 4, 128),
      traffic::StreamSpec::synthetic(72, 16, 96, /*locality=*/0.3,
                                     /*write_fraction=*/0.4, /*seed=*/7),
      traffic::StreamSpec::hammer(rowhammer::HammerPattern::kDoubleSided,
                                  /*victim_row=*/130, 64),
  };
  traffic::TrafficEngine engine(ctrl, std::move(tenants), {});
  const auto report = engine.run();

  expect_parity(ctrl);
  // The per-tenant ledger and the controller counter block must agree.
  std::uint64_t reads = 0, writes = 0, hammers = 0;
  for (const auto& t : report.tenants) {
    reads += t.reads;
    writes += t.writes;
    hammers += t.hammer_acts;
  }
  const auto& stats = ctrl.stats();
  EXPECT_EQ(stats.get("reads"), static_cast<double>(reads));
  EXPECT_EQ(stats.get("writes"), static_cast<double>(writes));
  EXPECT_EQ(stats.get("hammer_acts"), static_cast<double>(hammers));
}

TEST(CounterParity, IntegrityCampaign) {
  Controller ctrl(dram::Geometry::tiny(), dram::ddr4_2400());
  // Materialize two rows, register them, corrupt one bit, scrub.
  std::vector<std::uint8_t> row(ctrl.geometry().row_bytes, 0x3C);
  ctrl.write(ctrl.mapper().row_base(8), row);
  ctrl.write(ctrl.mapper().row_base(9), row);
  integrity::Config cfg;
  cfg.group_size = 64;
  integrity::DramScrubber scrubber(ctrl, {8, 9}, cfg);
  ctrl.data().flip_bit(8, 10, 3);
  scrubber.scrub_pass();

  expect_parity(ctrl);
  const auto& stats = ctrl.stats();
  EXPECT_EQ(stats.get("scrub_chunk_verifies"),
            static_cast<double>(scrubber.stats().verified_groups));
  EXPECT_GT(stats.get("scrub_chunk_verifies"), 0.0);
  // The corrective write is accounted like any other controller write.
  EXPECT_EQ(stats.get("writes"),
            2.0 + static_cast<double>(scrubber.stats().correction_writes));
}

TEST(CounterParity, ChannelSwapAdoption) {
  Controller ctrl(dram::Geometry::tiny(), dram::ddr4_2400());
  defense::RowSwapConfig cfg;
  cfg.threshold = 8;
  defense::RowSwap rrs(ctrl, cfg, Rng(3));
  ctrl.add_listener(&rrs);
  for (int i = 0; i < 64; ++i) ctrl.hammer(ctrl.mapper().row_base(40));
  expect_parity(ctrl);
  EXPECT_EQ(ctrl.stats().get("channel_swaps"),
            static_cast<double>(rrs.swaps()));
  EXPECT_GT(ctrl.stats().get("channel_swaps"), 0.0);
}

}  // namespace
