// Conformance suite for the cycle-approximate DRAM timing engine.
//
// Golden command-interval traces, protocol-invariant property tests, and
// REF-contention regressions — the acceptance bar for src/dram/timing_model:
//   1. exact ACT→RD→PRE→ACT picosecond intervals for all three presets;
//   2. hit/miss latency parity with Timing::hit_latency()/miss_latency();
//   3. REF cadence: one REF per tREFI, bank blocked for tRFC, no REF
//      starvation under saturating hammer traffic;
//   4. protocol invariants over randomized seeded tenant mixes (no two
//      ACTs to one bank within tRC, monotonic clock, REF/ACT busy
//      intervals never overlap) and byte-identical timed reports at
//      DL_THREADS 1 vs 8;
//   5. the Fig. 7-style regression: DRAM-Locker overhead in nanoseconds
//      stays inside the paper's reported band.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/units.hpp"
#include "dram/controller.hpp"
#include "dram/timing_model.hpp"
#include "scenario/scenario.hpp"
#include "traffic/engine.hpp"
#include "traffic/stream.hpp"

namespace {

using namespace dl;
using namespace dl::dram;

TimingSpec timed() { return {.enabled = true, .scheduled_refresh = true}; }

struct Preset {
  const char* name;
  Timing t;
};

class TimingConformance : public ::testing::TestWithParam<Preset> {
 protected:
  Geometry g = Geometry::tiny();
  Timing t = GetParam().t;
};

INSTANTIATE_TEST_SUITE_P(Presets, TimingConformance,
                         ::testing::Values(Preset{"ddr4_2400", ddr4_2400()},
                                           Preset{"ddr3_1600", ddr3_1600()},
                                           Preset{"lpddr4_3200",
                                                  lpddr4_3200()}),
                         [](const auto& info) { return info.param.name; });

// --- golden traces ---------------------------------------------------------

TEST_P(TimingConformance, GoldenActRdPreActIntervals) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  ctrl.trace().set_capacity(16);
  std::array<std::uint8_t, 4> buf{};

  const auto r1 = ctrl.read(0, buf);            // cold miss, bank 0 row 0
  const auto r2 = ctrl.read(g.row_bytes, buf);  // conflict: same bank, row 1
  EXPECT_FALSE(r1.row_hit);
  EXPECT_FALSE(r2.row_hit);

  const auto& rec = ctrl.trace().records();
  ASSERT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec[0].kind, CommandKind::kActivate);
  EXPECT_EQ(rec[0].issued_at, 0);
  EXPECT_EQ(rec[1].kind, CommandKind::kRead);
  EXPECT_EQ(rec[1].issued_at - rec[0].issued_at, t.tRCD);  // ACT -> RD
  EXPECT_EQ(rec[2].kind, CommandKind::kPrecharge);
  EXPECT_EQ(rec[2].issued_at - rec[0].issued_at, t.tRAS);  // ACT -> PRE
  EXPECT_EQ(rec[3].kind, CommandKind::kActivate);
  EXPECT_EQ(rec[3].issued_at - rec[2].issued_at, t.tRP);   // PRE -> ACT
  EXPECT_EQ(rec[3].issued_at - rec[0].issued_at, t.row_cycle());  // tRC
  EXPECT_EQ(rec[4].kind, CommandKind::kRead);
  EXPECT_EQ(rec[4].issued_at - rec[3].issued_at, t.tRCD);

  // The conflict access completes one full row cycle after the first: the
  // caller-visible latency of a bank-conflict read is exactly tRC.
  EXPECT_EQ(r2.latency, t.row_cycle());
}

TEST_P(TimingConformance, HitAndMissLatencyParity) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  std::array<std::uint8_t, 4> buf{};
  const auto miss = ctrl.read(0, buf);
  const auto hit = ctrl.read(8, buf);
  EXPECT_FALSE(miss.row_hit);
  EXPECT_TRUE(hit.row_hit);
  EXPECT_EQ(miss.latency, t.miss_latency());
  EXPECT_EQ(hit.latency, t.hit_latency());

  // Parity with the analytic controller on the uncontended fast path.
  Controller legacy(g, t);
  const auto lmiss = legacy.read(0, buf);
  const auto lhit = legacy.read(8, buf);
  EXPECT_EQ(miss.latency, lmiss.latency);
  EXPECT_EQ(hit.latency, lhit.latency);
}

// --- REF cadence -----------------------------------------------------------

TEST_P(TimingConformance, RefIssuesExactlyOncePerTrefiSlot) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  ctrl.trace().set_capacity(64);
  ctrl.advance_time(10 * t.tREFI + 1);
  std::array<std::uint8_t, 4> buf{};
  ctrl.read(0, buf);  // catch-up point: all ten due REFs issue here

  const auto* tm = ctrl.timing_model();
  ASSERT_NE(tm, nullptr);
  EXPECT_EQ(tm->refresh_stats().refs_issued, 10u);
  EXPECT_EQ(tm->refresh_stats().ref_busy_ps, 10 * t.tRFC);
  EXPECT_EQ(tm->refresh_stats().max_ref_slip_ps, 0);
  EXPECT_EQ(ctrl.counters().value(Counter::kAutoRefreshes), 10.0);

  // On an idle channel every REF lands exactly on its tREFI slot.
  std::vector<Picoseconds> ref_times;
  for (const auto& rec : ctrl.trace().records()) {
    if (rec.kind == CommandKind::kRefreshAll) ref_times.push_back(rec.issued_at);
  }
  ASSERT_EQ(ref_times.size(), 10u);
  for (std::size_t k = 0; k < ref_times.size(); ++k) {
    EXPECT_EQ(ref_times[k], static_cast<Picoseconds>(k + 1) * t.tREFI);
  }
}

TEST_P(TimingConformance, RefBlocksTheBankForTrfc) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  ctrl.trace().set_capacity(16);
  ctrl.advance_time(t.tREFI);  // first REF due exactly now
  std::array<std::uint8_t, 4> buf{};
  const auto r = ctrl.read(0, buf);

  // The read's ACT cannot start until the REF releases the bank.
  const auto& rec = ctrl.trace().records();
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec[0].kind, CommandKind::kRefreshAll);
  EXPECT_EQ(rec[0].issued_at, t.tREFI);
  EXPECT_EQ(rec[1].kind, CommandKind::kActivate);
  EXPECT_EQ(rec[1].issued_at, t.tREFI + t.tRFC);
  EXPECT_EQ(r.latency, t.tRFC + t.miss_latency());
}

TEST_P(TimingConformance, NoRefStarvationUnderSaturatingHammer) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  // Saturate one bank: alternate two rows so every hammer is a fresh ACT.
  const Picoseconds horizon = 5 * t.tREFI;
  while (ctrl.now() < horizon) {
    ctrl.hammer(0);
    ctrl.hammer(g.row_bytes);
  }
  const auto& rs = ctrl.timing_model()->refresh_stats();
  // One REF per elapsed tREFI slot — the schedule never falls behind by
  // more than the slot currently being contended.
  const auto slots = static_cast<std::uint64_t>(ctrl.now() / t.tREFI);
  EXPECT_GE(rs.refs_issued + 1, slots);
  EXPECT_GE(rs.refs_issued, 5u);
  // A REF can slip past its slot by at most one in-flight command.
  EXPECT_LE(rs.max_ref_slip_ps, t.row_cycle());
}

TEST_P(TimingConformance, SameBankHammerThrottlesAtTrc) {
  Controller ctrl(g, t);
  ctrl.set_timing_spec(timed());
  ctrl.hammer(0);
  const auto r2 = ctrl.hammer(g.row_bytes);  // same bank: pays full tRC
  EXPECT_EQ(r2.latency, t.row_cycle());
}

// --- channel-level ACT pacing (tRRD / tFAW) --------------------------------

TEST_P(TimingConformance, FawWindowPacesCrossBankActivates) {
  TimingModel model(t, /*num_banks=*/8, timed());
  std::vector<Picoseconds> acts;
  for (std::size_t bank = 0; bank < 5; ++bank) {
    acts.push_back(model.hammer(bank, /*bank_open=*/false, 0).act_at);
  }
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(acts[i] - acts[i - 1], t.tRRD);  // tRRD between distinct banks
  }
  // The fifth ACT sees the rolling four-activate window.
  EXPECT_EQ(acts[4], std::max(acts[3] + t.tRRD, acts[0] + t.tFAW));
}

// --- protocol invariants over randomized seeded streams --------------------

TEST_P(TimingConformance, InvariantsHoldOverSeededTenantMixes) {
  const std::uint64_t rows_per_bank = g.rows_per_bank();
  for (const std::uint64_t seed : {1u, 7u, 23u, 91u, 1337u}) {
    Controller ctrl(g, t);
    ctrl.set_timing_spec(timed());
    ctrl.trace().set_capacity(1u << 16);
    std::vector<traffic::StreamSpec> tenants = {
        traffic::StreamSpec::synthetic(/*base_row=*/0, /*rows=*/64,
                                       /*requests=*/1200, /*locality=*/0.3,
                                       /*write_fraction=*/0.4, seed),
        traffic::StreamSpec::weight_reader(/*base_row=*/300, /*rows=*/8,
                                           /*requests=*/800),
        traffic::StreamSpec::hammer(rowhammer::HammerPattern::kDoubleSided,
                                    /*victim_row=*/20, /*acts=*/800),
    };
    traffic::TrafficEngine engine(ctrl, std::move(tenants), {});
    const auto report = engine.run();
    EXPECT_GT(report.serviced, 0u);
    ASSERT_EQ(ctrl.trace().dropped(), 0u) << "trace overflowed; grow capacity";

    Picoseconds last_time = std::numeric_limits<Picoseconds>::min();
    Picoseconds last_ref_end = std::numeric_limits<Picoseconds>::min();
    Picoseconds last_act_any = std::numeric_limits<Picoseconds>::min();
    std::vector<Picoseconds> last_act(g.total_banks(),
                                      std::numeric_limits<Picoseconds>::min());
    for (const auto& rec : ctrl.trace().records()) {
      // Clock monotonic: the trace is emitted in issue order.
      EXPECT_GE(rec.issued_at, last_time) << "seed " << seed;
      last_time = rec.issued_at;
      if (rec.kind == CommandKind::kRefreshAll) {
        // REF starts only once every previously activated bank's row
        // cycle completed (precharge-all), and never overlaps an ACT.
        if (last_act_any != std::numeric_limits<Picoseconds>::min()) {
          EXPECT_GE(rec.issued_at, last_act_any + t.row_cycle())
              << "seed " << seed;
        }
        last_ref_end = rec.issued_at + t.tRFC;
        continue;
      }
      if (rec.kind != CommandKind::kActivate) continue;
      const auto bank = static_cast<std::size_t>(rec.row / rows_per_bank);
      ASSERT_LT(bank, last_act.size());
      // No two ACTs to one bank within tRC.
      if (last_act[bank] != std::numeric_limits<Picoseconds>::min()) {
        EXPECT_GE(rec.issued_at - last_act[bank], t.row_cycle())
            << "seed " << seed << " bank " << bank;
      }
      // No ACT inside a REF's tRFC busy window.
      EXPECT_GE(rec.issued_at, last_ref_end) << "seed " << seed;
      last_act[bank] = rec.issued_at;
      last_act_any = rec.issued_at;
    }
  }
}

// --- timed campaign reports ------------------------------------------------

scenario::HammerCampaign timed_campaign(std::string name, std::uint64_t seed) {
  scenario::HammerCampaign c;
  c.name = std::move(name);
  c.env.geometry = Geometry::tiny();
  c.env.geometry.rows_per_subarray = 128;
  c.env.geometry.row_bytes = 4096;
  c.env.timing_spec = timed();
  c.env.disturbance.t_rh = 1000;
  c.env.disturbance_seed = seed;
  c.attack.victim_row = 20;
  c.attack.act_budget = 1500;
  c.cycles = 2;
  c.traffic.tenants = {
      traffic::StreamSpec::weight_reader(/*base_row=*/32, /*rows=*/8,
                                         /*requests=*/1200),
      traffic::StreamSpec::synthetic(/*base_row=*/96, /*rows=*/32,
                                     /*requests=*/900, /*locality=*/0.3,
                                     /*write_fraction=*/0.4, /*seed=*/seed),
      traffic::StreamSpec::hammer(rowhammer::HammerPattern::kDoubleSided,
                                  /*victim_row=*/20, /*acts=*/1500),
  };
  return c;
}

TEST(TimedReports, ByteIdenticalAcrossThreadCounts) {
  std::vector<scenario::HammerCampaign> campaigns;
  for (std::uint64_t i = 0; i < 4; ++i) {
    campaigns.push_back(timed_campaign("timed/" + std::to_string(i), 3 + i));
  }
  parallel::set_threads(1);
  const std::string serial =
      scenario::report_json(scenario::run(campaigns)).dump(2);
  parallel::set_threads(8);
  const std::string fanned =
      scenario::report_json(scenario::run(campaigns)).dump(2);
  parallel::set_threads(0);
  EXPECT_EQ(serial, fanned);
  EXPECT_NE(serial.find("\"timing\""), std::string::npos);
  EXPECT_NE(serial.find("\"refs_issued\""), std::string::npos);
}

TEST(TimedReports, TimedServeCarriesNanosecondPercentilesAndRefStats) {
  scenario::ServeCampaign c;
  c.name = "timed-serve";
  c.env.geometry = Geometry::tiny();
  c.env.geometry.rows_per_subarray = 128;
  c.env.geometry.row_bytes = 4096;
  c.env.timing_spec = timed();
  c.env.disturbance.t_rh = 1000;
  c.env.fabric.channels = 2;
  c.traffic.tenants = {
      traffic::StreamSpec::weight_reader(/*base_row=*/64, /*rows=*/16,
                                         /*requests=*/2500),
      traffic::StreamSpec::synthetic(/*base_row=*/256, /*rows=*/64,
                                     /*requests=*/2500, /*locality=*/0.4,
                                     /*write_fraction=*/0.3, /*seed=*/11),
      traffic::StreamSpec::hammer(rowhammer::HammerPattern::kDoubleSided,
                                  /*victim_row=*/40, /*acts=*/2000),
  };
  c.rounds = 3;
  const auto r = scenario::run_serve(c);
  ASSERT_EQ(r.status, scenario::CampaignStatus::kOk);
  EXPECT_TRUE(r.timed);
  // Long enough to cross several tREFI slots on each channel.
  EXPECT_GT(r.refresh.refs_issued, 0u);
  EXPECT_GT(r.refresh.ref_busy_ps, 0);

  const std::string json = scenario::to_json(r).dump(2);
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"max_ref_slip_ps\""), std::string::npos);
}

TEST(TimedReports, DisabledSpecKeepsLegacyReportByteIdentical) {
  // The byte-compat contract: a campaign with timing off must serialize
  // exactly like one that never heard of TimingSpec.
  auto off = timed_campaign("compat", 5);
  off.env.timing_spec = TimingSpec{};  // disabled
  const std::string report =
      scenario::report_json(scenario::run({off})).dump(2);
  EXPECT_EQ(report.find("\"timing\""), std::string::npos);
  EXPECT_EQ(report.find("\"refs_issued\""), std::string::npos);
}

// --- Fig. 7-style overhead regression --------------------------------------

TEST(TimedReports, DramLockerOverheadStaysInPaperBand) {
  // Fig. 7(a) of the paper: DRAM-Locker's defense latency stays "near
  // zero" across the BFA campaign — denied activations cost nothing and
  // unlock SWAPs are rare — while shuffle/refresh defenses climb.  The
  // paper reports the overhead as negligible (<1% of execution time); we
  // pin the nanosecond-denominated measurement of the timing engine to a
  // 2% band to leave headroom for the cycle-approximate model's tiny test
  // geometry, where fixed SWAP costs amortize over a much shorter run
  // than the paper's full-size DIMM workload.
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 2;
  auto c = timed_campaign("fig7-band", 9);
  c.defense = scenario::DefenseSpec::dram_locker(lcfg, 5);
  c.protected_rows = {20};
  // Victim-side reads adjacent to the locked region drive unlock SWAPs
  // and relocks, so the defense actually pays its command costs.
  c.pre_traffic = {{.row = 20, .repeat = 4, .bytes = 8, .can_unlock = true}};
  c.cycles = 4;

  const auto r = scenario::run_one(c);
  ASSERT_EQ(r.status, scenario::CampaignStatus::kOk);
  ASSERT_TRUE(r.timed);
  ASSERT_GT(r.elapsed, 0);
  const double overhead = static_cast<double>(r.defense_time) /
                          static_cast<double>(r.elapsed);
  EXPECT_GE(overhead, 0.0);
  EXPECT_LT(overhead, 0.02) << "defense_time " << r.defense_time
                            << " ps of " << r.elapsed << " ps";
}

// --- picosecond accumulator overflow boundary ------------------------------

TEST(TimedReports, CheckedPicosecondAddRejectsOverflow) {
  constexpr Picoseconds kMax = std::numeric_limits<Picoseconds>::max();
  EXPECT_EQ(checked_ps_add(kMax - 1, 1), kMax);
  EXPECT_THROW(checked_ps_add(kMax, 1), dl::Error);
  EXPECT_THROW(checked_ps_add(std::numeric_limits<Picoseconds>::min(), -1),
               dl::Error);
}

}  // namespace
