// Suppressions with reasons are honored — nothing here may be flagged
// (corpus; not built).
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace corpus {

class Sorted {
 public:
  std::vector<std::uint64_t> keys_sorted() const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order;
    order.reserve(counts_.size());
    // dl-lint: allow(unordered-iter): collected pairs are sorted below, so
    // the exported order is independent of bucket order
    for (const auto& [k, v] : counts_) order.emplace_back(v, k);
    std::sort(order.begin(), order.end());
    std::vector<std::uint64_t> out;
    for (const auto& [v, k] : order) out.push_back(k);
    return out;
  }

  std::size_t erase_stale(std::uint64_t floor) {
    std::size_t erased = 0;
    for (auto it = counts_.begin();  // dl-lint: allow(unordered-iter): erase-if sweep, survivors independent of visit order
         it != counts_.end();) {
      if (it->second < floor) {
        it = counts_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace corpus
