// Near-miss patterns that every dl-lint rule must leave alone.  A single
// finding anywhere in this file is a linter regression (corpus; not built).
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dl {
class Rng {
 public:
  explicit Rng(unsigned long long seed);
  double next_double();
};
unsigned long long substream_seed(unsigned long long, unsigned long long,
                                  unsigned long long);
namespace parallel {
template <typename Fn>
void parallel_for(std::size_t, std::size_t, std::size_t, Fn&&);
}  // namespace parallel
}  // namespace dl

namespace corpus {

// --- wall-clock near misses: members, own identifiers, strings, comments.
struct Timer {
  long time() const;
  long clock() const;
};

long member_calls_are_fine(const Timer& t, Timer* p) {
  return t.time() + p->clock();
}

long my_time(long x) { return x; }      // own function named *time
long rand_max_lookalike = 0;            // identifier containing "rand"

long own_namespace_call() {
  return my_time(3);  // and rand() in a comment is ignored
}

std::string rand_in_string() {
  return "call rand() and time(nullptr) here";  // literal, not code
}

// --- unordered-iter near misses: ordered containers, matching names.
class OrderedExport {
 public:
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    for (const auto& [k, v] : counts_) total += v;  // std::map: ordered
    for (std::uint64_t v : rows_) total += v;       // vector
    return total;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::vector<std::uint64_t> rows_;
};

// --- stat-string near miss: string-keyed add outside any hot-path file.
struct StatSet {
  void add(const std::string& name, double delta = 1.0);
};

void cold_path_stats(StatSet& stats) {
  stats.add("campaign_summary_rows");  // fine here: not a hot path
}

// --- rng-ref-capture near misses: chunk-local stream; outer Rng that the
// lambda never touches.
double chunk_local_rng(std::size_t n) {
  dl::Rng outer(99);  // consumed only outside the parallel region
  std::vector<double> out(n);
  dl::parallel::parallel_for(
      0, n, 32, [&](std::size_t b, std::size_t e, std::size_t ci) {
        dl::Rng rng(dl::substream_seed(5, 1, ci));
        for (std::size_t i = b; i < e; ++i) out[i] = rng.next_double();
      });
  return outer.next_double();
}

}  // namespace corpus
