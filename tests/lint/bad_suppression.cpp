// A suppression without a reason is itself a finding, and does NOT
// suppress the underlying violation (corpus; not built).
#include <cstdint>
#include <unordered_set>

namespace corpus {

class NoReason {
 public:
  std::uint64_t sum() const {
    std::uint64_t total = 0;
    // dl-lint: allow(unordered-iter) // EXPECT-LINT: bad-suppression
    for (std::uint64_t v : rows_) total += v;  // EXPECT-LINT: unordered-iter
    return total;
  }

 private:
  std::unordered_set<std::uint64_t> rows_;
};

}  // namespace corpus
