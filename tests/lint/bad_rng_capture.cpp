// Intentional shared-RNG-in-parallel-chunk violations (corpus; not built).
#include <cstddef>
#include <vector>

namespace dl {
class Rng {
 public:
  explicit Rng(unsigned long long seed);
  double next_double();
};
unsigned long long substream_seed(unsigned long long, unsigned long long,
                                  unsigned long long);
namespace parallel {
template <typename Fn>
void parallel_for(std::size_t, std::size_t, std::size_t, Fn&&);
}  // namespace parallel
}  // namespace dl

namespace corpus {

double bad_shared_stream(std::size_t n) {
  dl::Rng rng(1234);
  std::vector<double> out(n);
  dl::parallel::parallel_for(
      0, n, 64, [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) {
          out[i] = rng.next_double();  // EXPECT-LINT: rng-ref-capture
        }
      });
  double sum = 0.0;
  for (double v : out) sum += v;
  return sum;
}

double good_chunk_local_stream(std::size_t n) {
  std::vector<double> out(n);
  dl::parallel::parallel_for(
      0, n, 64, [&](std::size_t b, std::size_t e, std::size_t ci) {
        dl::Rng chunk_rng(dl::substream_seed(7, 0, ci));
        for (std::size_t i = b; i < e; ++i) {
          out[i] = chunk_rng.next_double();
        }
      });
  double sum = 0.0;
  for (double v : out) sum += v;
  return sum;
}

}  // namespace corpus
