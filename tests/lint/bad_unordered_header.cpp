// Iterates a container whose unordered-ness is only visible in the paired
// header (corpus; not built).
#include "bad_unordered_header.hpp"

namespace corpus {

std::uint64_t HeaderDeclared::sum() const {
  std::uint64_t total = 0;
  for (const auto& [k, v] : table_) {  // EXPECT-LINT: unordered-iter
    total += v;
  }
  return total;
}

}  // namespace corpus
