// Intentional wall-clock / ambient-entropy violations (corpus; not built).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace corpus {

unsigned bad_seed_from_entropy() {
  std::random_device rd;  // EXPECT-LINT: wall-clock
  return rd();
}

int bad_libc_rand() {
  srand(42);              // EXPECT-LINT: wall-clock
  return rand();          // EXPECT-LINT: wall-clock
}

long bad_wall_time() {
  return time(nullptr);   // EXPECT-LINT: wall-clock
}

long bad_std_wall_time() {
  return std::time(nullptr);  // EXPECT-LINT: wall-clock
}

long bad_cpu_clock() {
  return clock();         // EXPECT-LINT: wall-clock
}

double bad_chrono_now() {
  auto t0 = std::chrono::system_clock::now();  // EXPECT-LINT: wall-clock
  auto t1 = std::chrono::steady_clock::now();  // EXPECT-LINT: wall-clock
  return std::chrono::duration<double>(t1.time_since_epoch() -
                                       t0.time_since_epoch())
      .count();
}

}  // namespace corpus
