// dl-lint: hot-path — corpus stand-in for a PR 5 typed-counter file.
// Intentional string-keyed StatSet::add on a hot path (corpus; not built).
#include <string>

namespace corpus {

struct StatSet {
  void add(const std::string& name, double delta = 1.0);
};

class Controller {
 public:
  void on_access() {
    stats_.add("row_hits");          // EXPECT-LINT: stat-string-hotpath
    stats().add("activates", 2.0);   // EXPECT-LINT: stat-string-hotpath
  }

 private:
  StatSet& stats() { return stats_; }
  StatSet stats_;
};

}  // namespace corpus
