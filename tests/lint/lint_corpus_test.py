#!/usr/bin/env python3
"""Regression harness for tools/dl_lint.py (ctest `lint_corpus`).

Runs the linter in regex mode over the tests/lint corpus and requires the
finding set to equal the expectation markers exactly:

    // EXPECT-LINT: <rule>[, <rule>]      finding on this line
    // EXPECT-LINT-FILE: <rule> xN        N findings of <rule> anywhere in
                                          this file (for cross-file rules
                                          that report whole-file lines)

Any unexpected finding (false positive) or missing finding (dead rule)
fails with a diff.  The clean corpus file asserts zero findings by simply
carrying no markers.
"""

import collections
import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINTER = REPO / "tools" / "dl_lint.py"

INLINE = re.compile(r"//\s*EXPECT-LINT:\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)")
PER_FILE = re.compile(r"//\s*EXPECT-LINT-FILE:\s*([a-z\-]+)\s*x(\d+)")
FINDING = re.compile(r"^(.*?):(\d+): \[([a-z\-]+)\]")


def expected_markers():
    inline = set()              # (relpath, line, rule)
    per_file = collections.Counter()   # (relpath, rule) -> count
    for path in sorted(HERE.rglob("*.hpp")) + sorted(HERE.rglob("*.cpp")):
        rel = path.relative_to(REPO).as_posix()
        for no, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            m = INLINE.search(line)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    inline.add((rel, no, rule))
            m = PER_FILE.search(line)
            if m:
                per_file[(rel, m.group(1))] += int(m.group(2))
    return inline, per_file


def main():
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--mode=regex", str(HERE)],
        capture_output=True, text=True, check=False)
    if proc.returncode not in (0, 1):
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(f"lint_corpus: dl_lint.py crashed (exit {proc.returncode})")
        return 1

    got = collections.Counter()  # same line+rule may fire more than once
    for line in proc.stdout.splitlines():
        m = FINDING.match(line)
        if m:
            got[(m.group(1), int(m.group(2)), m.group(3))] += 1

    inline, per_file = expected_markers()
    failures = []

    # Pull per-file-counted rules out of the line-exact comparison.
    counted_rules = {(rel, rule) for (rel, rule) in per_file}
    got_counted = collections.Counter()
    for (rel, _line, rule), n in got.items():
        if (rel, rule) in counted_rules:
            got_counted[(rel, rule)] += n
    got_exact = {(rel, line, rule) for (rel, line, rule) in got
                 if (rel, rule) not in counted_rules}

    for key, want in sorted(per_file.items()):
        have = got_counted.get(key, 0)
        if have != want:
            failures.append(
                f"{key[0]}: expected {want} x [{key[1]}], got {have}")
    for rel, line, rule in sorted(inline - got_exact):
        failures.append(f"{rel}:{line}: expected [{rule}] — rule went dead")
    for rel, line, rule in sorted(got_exact - inline):
        failures.append(f"{rel}:{line}: unexpected [{rule}] — false positive")

    if proc.returncode == 0 and (inline or per_file):
        failures.append("dl_lint exited 0 although violations are expected")

    if failures:
        print("lint_corpus: FAILED")
        for f in failures:
            print("  " + f)
        print("--- linter output ---")
        print(proc.stdout)
        return 1
    n = len(inline) + sum(per_file.values())
    print(f"lint_corpus: OK — {n} expected findings matched exactly, "
          f"no false positives")
    return 0


if __name__ == "__main__":
    sys.exit(main())
