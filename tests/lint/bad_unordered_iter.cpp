// Intentional unordered-container iteration violations (corpus; not built).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace corpus {

class Tracker {
 public:
  std::vector<std::uint64_t> export_rows() const {
    std::vector<std::uint64_t> out;
    for (const auto& [row, count] : counts_) {  // EXPECT-LINT: unordered-iter
      out.push_back(row * count);
    }
    return out;
  }

  std::size_t walk_members() const {
    std::size_t sum = 0;
    for (auto it = members_.begin();  // EXPECT-LINT: unordered-iter
         it != members_.end(); ++it) {
      sum += *it;
    }
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::unordered_set<std::size_t> members_;
};

std::size_t local_decl_iteration() {
  std::unordered_map<int, int> local;
  std::size_t n = 0;
  for (const auto& kv : local) n += kv.second;  // EXPECT-LINT: unordered-iter
  return n;
}

}  // namespace corpus
