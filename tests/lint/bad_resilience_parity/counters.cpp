// EXPECT-LINT-FILE: counter-parity x2
//   (kFailoverReads has no to_string case, kFailedWrites exports as "?")
#include "counters.hpp"

namespace corpus_resilience {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kReads:        return "reads";
    case Counter::kWrites:       return "writes";
    case Counter::kRetiredRows:  return "retired_rows";
    case Counter::kRemapReads:   return "remap_reads";
    case Counter::kFailedWrites: return "?";
  }
  return "?";
}

}  // namespace corpus_resilience
