// Corpus counters mirroring the resilience additions (not built): the
// enum grew four rungs at the end and kNumCounters tracks the new last
// enumerator correctly — the breaks live entirely in counters.cpp:
//   - kFailoverReads never got a to_string case;
//   - kFailedWrites was stubbed with the placeholder key "?".
#pragma once

#include <cstddef>

namespace corpus_resilience {

enum class Counter : unsigned char {
  kReads,
  kWrites,
  kRetiredRows,
  kRemapReads,
  kFailoverReads,
  kFailedWrites,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kFailedWrites) + 1;

const char* to_string(Counter c);

}  // namespace corpus_resilience
