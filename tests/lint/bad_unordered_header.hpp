// Paired header for bad_unordered_header.cpp: the container is declared
// here, iterated in the .cpp — the linter must see across the pair.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace corpus {

class HeaderDeclared {
 public:
  std::uint64_t sum() const;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

}  // namespace corpus
