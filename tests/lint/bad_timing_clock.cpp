// Intentional host-clock leaks into timing-engine code (corpus; not built).
// The cycle-approximate DRAM clock is integer picoseconds derived purely
// from Timing presets — any host time source smuggled into a latency or
// REF-schedule computation breaks bit-for-bit determinism.
#include <chrono>
#include <ctime>

namespace corpus {

long bad_timespec_epoch() {
  timespec ts{};
  timespec_get(&ts, TIME_UTC);  // EXPECT-LINT: wall-clock
  return ts.tv_nsec;
}

unsigned long long bad_tsc_as_dram_clock() {
  // "Calibrating" the picosecond clock against the host TSC.
  return __rdtsc();  // EXPECT-LINT: wall-clock
}

unsigned long long bad_builtin_cycle_counter() {
  return __builtin_readcyclecounter();  // EXPECT-LINT: wall-clock
}

double bad_utc_ref_deadline() {
  using clock = std::chrono::utc_clock;  // EXPECT-LINT: wall-clock
  return 0.0;
}

double bad_file_clock_stamp() {
  using clock = std::chrono::file_clock;  // EXPECT-LINT: wall-clock
  return 0.0;
}

}  // namespace corpus
