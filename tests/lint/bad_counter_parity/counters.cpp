// EXPECT-LINT-FILE: counter-parity x3
//   (kOrphan missing a case, duplicate key "hits", stray kGhost case)
#include "counters.hpp"

namespace corpus {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kHits:   return "hits";
    case Counter::kMisses: return "misses";
    case Counter::kAlias:  return "hits";
    case Counter::kGhost:  return "ghost";
  }
  return "?";
}

}  // namespace corpus
