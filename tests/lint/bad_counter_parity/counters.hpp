// Corpus counters pair with deliberate parity breaks (not built):
//   - kOrphan has no to_string case in counters.cpp;
//   - kAlias exports under the same key as kHits;
//   - kNumCounters is derived from the wrong (non-last) enumerator.
#pragma once

#include <cstddef>

namespace corpus {

enum class Counter : unsigned char {
  kHits,
  kMisses,
  kAlias,
  kOrphan,
};

inline constexpr std::size_t kNumCounters =  // EXPECT-LINT: counter-parity
    static_cast<std::size_t>(Counter::kAlias) + 1;

const char* to_string(Counter c);

}  // namespace corpus
