// Tests for the JSON writer's string escaping: reports embed campaign and
// tenant names that may carry quotes, control characters, or UTF-8.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"

namespace {

using dl::json::Value;

std::string dump_str(const std::string& s) { return Value(s).dump(); }

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(dump_str("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(dump_str("a\\b\\\\c"), "\"a\\\\b\\\\\\\\c\"");
  EXPECT_EQ(dump_str("C:\\temp\\\"x\""), "\"C:\\\\temp\\\\\\\"x\\\"\"");
}

TEST(JsonEscape, NamedControlCharacters) {
  EXPECT_EQ(dump_str("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(dump_str("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(dump_str("a\tb"), "\"a\\tb\"");
}

TEST(JsonEscape, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(dump_str(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(dump_str(std::string("\x1f", 1)), "\"\\u001f\"");
  EXPECT_EQ(dump_str(std::string("a\0b", 3)), "\"a\\u0000b\"");
  // 0x7f DEL is not a JSON control character; passes through.
  EXPECT_EQ(dump_str("\x7f"), "\"\x7f\"");
}

TEST(JsonEscape, Utf8PassesThroughByteIdentical) {
  const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\x92";
  EXPECT_EQ(dump_str(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscape, ObjectKeysAreEscaped) {
  auto obj = Value::object();
  obj["ke\"y\n"] = 1;
  EXPECT_EQ(obj.dump(), "{\"ke\\\"y\\n\":1}");
}

TEST(JsonEscape, EscapedStringsNestInsideDocuments) {
  auto doc = Value::object();
  auto arr = Value::array();
  arr.push_back("tab\there");
  doc["names"] = std::move(arr);
  EXPECT_EQ(doc.dump(), "{\"names\":[\"tab\\there\"]}");
  EXPECT_EQ(doc.dump(2), "{\n  \"names\": [\n    \"tab\\there\"\n  ]\n}");
}

}  // namespace
