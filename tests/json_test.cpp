// Tests for the JSON writer's string escaping: reports embed campaign and
// tenant names that may carry quotes, control characters, or UTF-8.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

using dl::json::Value;

std::string dump_str(const std::string& s) { return Value(s).dump(); }

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(dump_str("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(dump_str("a\\b\\\\c"), "\"a\\\\b\\\\\\\\c\"");
  EXPECT_EQ(dump_str("C:\\temp\\\"x\""), "\"C:\\\\temp\\\\\\\"x\\\"\"");
}

TEST(JsonEscape, NamedControlCharacters) {
  EXPECT_EQ(dump_str("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(dump_str("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(dump_str("a\tb"), "\"a\\tb\"");
}

TEST(JsonEscape, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(dump_str(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(dump_str(std::string("\x1f", 1)), "\"\\u001f\"");
  EXPECT_EQ(dump_str(std::string("a\0b", 3)), "\"a\\u0000b\"");
  // 0x7f DEL is not a JSON control character; passes through.
  EXPECT_EQ(dump_str("\x7f"), "\"\x7f\"");
}

TEST(JsonEscape, Utf8PassesThroughByteIdentical) {
  const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\x92";
  EXPECT_EQ(dump_str(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscape, ObjectKeysAreEscaped) {
  auto obj = Value::object();
  obj["ke\"y\n"] = 1;
  EXPECT_EQ(obj.dump(), "{\"ke\\\"y\\n\":1}");
}

TEST(JsonEscape, EscapedStringsNestInsideDocuments) {
  auto doc = Value::object();
  auto arr = Value::array();
  arr.push_back("tab\there");
  doc["names"] = std::move(arr);
  EXPECT_EQ(doc.dump(), "{\"names\":[\"tab\\there\"]}");
  EXPECT_EQ(doc.dump(2), "{\n  \"names\": [\n    \"tab\\there\"\n  ]\n}");
}

// ------------------------------------------------------------- parser

TEST(JsonParse, RoundTripsDumpOutput) {
  Value doc = Value::object();
  doc["name"] = "matrix/double-sided/none";
  doc["count"] = std::uint64_t{18446744073709551615ull};
  doc["delta"] = std::int64_t{-42};
  doc["ratio"] = 0.25;
  doc["ok"] = true;
  doc["missing"] = Value();
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["items"] = std::move(arr);
  const std::string text = doc.dump();
  const Value parsed = Value::parse(text);
  EXPECT_EQ(parsed.dump(), text);       // byte-identical re-serialization
  EXPECT_EQ(parsed.dump(2), doc.dump(2));
}

TEST(JsonParse, TypedAccessors) {
  const Value v = Value::parse(
      "{\"u\": 7, \"i\": -3, \"d\": 1.5, \"b\": false, \"s\": \"hi\","
      " \"n\": null, \"a\": [10, 20]}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("u").as_u64(), 7u);
  EXPECT_EQ(v.at("u").as_i64(), 7);     // in-range cross-width reads work
  EXPECT_EQ(v.at("i").as_i64(), -3);
  EXPECT_EQ(v.at("d").as_double(), 1.5);
  EXPECT_EQ(v.at("u").as_double(), 7.0);
  EXPECT_FALSE(v.at("b").as_bool());
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_TRUE(v.at("n").is_null());
  ASSERT_TRUE(v.at("a").is_array());
  ASSERT_EQ(v.at("a").size(), 2u);
  EXPECT_EQ(v.at("a").item(1).as_u64(), 20u);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW((void)v.at("absent"), dl::Error);
  EXPECT_THROW((void)v.at("s").as_u64(), dl::Error);  // type mismatch
  EXPECT_THROW((void)v.at("i").as_u64(), dl::Error);  // negative -> u64
}

TEST(JsonParse, StringEscapesDecode) {
  const Value v = Value::parse(
      "\"quote \\\" slash \\\\ tab \\t newline \\n unicode \\u00e9\"");
  EXPECT_EQ(v.as_string(), "quote \" slash \\ tab \t newline \n unicode \xc3\xa9");
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "\"unterminated", "01", "1 2",
        "{\"a\":1,}", "tru", "\"bad \\x escape\"", "nan"}) {
    EXPECT_THROW((void)Value::parse(bad), dl::Error) << bad;
  }
  try {
    (void)Value::parse("{\"a\": !}");
    FAIL() << "expected dl::Error";
  } catch (const dl::Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, TornJournalLineIsRejected) {
  // The exact failure mode the campaign journal leans on: a line cut by a
  // mid-write kill must throw, never half-parse.
  Value doc = Value::object();
  doc["kind"] = "hammer";
  doc["granted_acts"] = 12345;
  const std::string line = doc.dump();
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    EXPECT_THROW((void)Value::parse(line.substr(0, cut)), dl::Error)
        << "prefix of length " << cut;
  }
  EXPECT_NO_THROW((void)Value::parse(line));
}

}  // namespace
