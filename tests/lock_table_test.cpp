// Tests for the DRAM-Locker lock-table.
#include <gtest/gtest.h>

#include "defense/lock_table.hpp"

namespace {

using dl::defense::LockTable;

TEST(LockTable, LockAndLookup) {
  LockTable t(8);
  EXPECT_TRUE(t.lock(42));
  EXPECT_TRUE(t.is_locked(42));
  EXPECT_FALSE(t.is_locked(43));
  EXPECT_EQ(t.size(), 1u);
}

TEST(LockTable, LockIsIdempotent) {
  LockTable t(8);
  EXPECT_TRUE(t.lock(42));
  EXPECT_FALSE(t.lock(42));
  EXPECT_EQ(t.size(), 1u);
}

TEST(LockTable, UnlockRemoves) {
  LockTable t(8);
  t.lock(42);
  EXPECT_TRUE(t.unlock(42));
  EXPECT_FALSE(t.is_locked(42));
  EXPECT_FALSE(t.unlock(42));
}

TEST(LockTable, CapacityEnforced) {
  LockTable t(2);
  EXPECT_TRUE(t.lock(1));
  EXPECT_TRUE(t.lock(2));
  EXPECT_FALSE(t.lock(3));
  EXPECT_EQ(t.rejected_inserts(), 1u);
  t.unlock(1);
  EXPECT_TRUE(t.lock(3));
}

TEST(LockTable, RelocateMovesLock) {
  LockTable t(4);
  t.lock(10);
  EXPECT_TRUE(t.relocate(10, 20));
  EXPECT_FALSE(t.is_locked(10));
  EXPECT_TRUE(t.is_locked(20));
  EXPECT_FALSE(t.relocate(99, 100));  // source not locked
}

TEST(LockTable, RelocateAtFullCapacityNeverRejects) {
  LockTable t(2);
  t.lock(1);
  t.lock(2);
  EXPECT_TRUE(t.relocate(1, 3));
  EXPECT_TRUE(t.is_locked(3));
  EXPECT_TRUE(t.is_locked(2));
  EXPECT_EQ(t.size(), 2u);
}

TEST(LockTable, RelocateToSelf) {
  LockTable t(2);
  t.lock(5);
  EXPECT_TRUE(t.relocate(5, 5));
  EXPECT_TRUE(t.is_locked(5));
}

TEST(LockTable, LockedRowsInInsertionOrder) {
  LockTable t(8);
  t.lock(30);
  t.lock(10);
  t.lock(20);
  const auto rows = t.locked_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], 30u);
  EXPECT_EQ(rows[1], 10u);
  EXPECT_EQ(rows[2], 20u);
}

TEST(LockTable, StatsTrackLookups) {
  LockTable t(8);
  t.lock(1);
  // Results deliberately discarded: the lookups themselves are the test.
  static_cast<void>(t.is_locked(1));
  static_cast<void>(t.is_locked(2));
  static_cast<void>(t.is_locked(1));
  EXPECT_EQ(t.lookups(), 3u);
  EXPECT_EQ(t.hits(), 2u);
}

TEST(LockTable, ClearEmptiesTable) {
  LockTable t(8);
  t.lock(1);
  t.lock(2);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.is_locked(1));
}

TEST(LockTable, ZeroCapacityRejected) {
  EXPECT_THROW(LockTable(0), dl::Error);
}

}  // namespace
