// Tests for the logical-to-physical row indirection.
#include <gtest/gtest.h>

#include <set>

#include "dram/indirection.hpp"

namespace {

using namespace dl::dram;

TEST(Indirection, IdentityByDefault) {
  RowIndirection ind(Geometry::tiny());
  for (GlobalRowId r : {0ull, 5ull, 100ull}) {
    EXPECT_EQ(ind.to_physical(r), r);
    EXPECT_EQ(ind.to_logical(r), r);
  }
  EXPECT_EQ(ind.displaced_rows(), 0u);
}

TEST(Indirection, SwapExchangesBothDirections) {
  RowIndirection ind(Geometry::tiny());
  ind.swap_logical(3, 9);
  EXPECT_EQ(ind.to_physical(3), 9u);
  EXPECT_EQ(ind.to_physical(9), 3u);
  EXPECT_EQ(ind.to_logical(9), 3u);
  EXPECT_EQ(ind.to_logical(3), 9u);
  EXPECT_EQ(ind.displaced_rows(), 2u);
}

TEST(Indirection, DoubleSwapRestoresIdentity) {
  RowIndirection ind(Geometry::tiny());
  ind.swap_logical(3, 9);
  ind.swap_logical(3, 9);
  EXPECT_EQ(ind.to_physical(3), 3u);
  EXPECT_EQ(ind.to_physical(9), 9u);
  EXPECT_EQ(ind.displaced_rows(), 0u);
}

TEST(Indirection, ChainedSwapsStayPermutation) {
  const Geometry g = Geometry::tiny();
  RowIndirection ind(g);
  // A sequence of overlapping swaps must keep the map a bijection.
  ind.swap_logical(1, 2);
  ind.swap_logical(2, 3);
  ind.swap_logical(3, 1);
  std::set<GlobalRowId> phys;
  for (GlobalRowId l : {1ull, 2ull, 3ull}) {
    const GlobalRowId p = ind.to_physical(l);
    EXPECT_EQ(ind.to_logical(p), l);
    phys.insert(p);
  }
  EXPECT_EQ(phys.size(), 3u);
}

TEST(Indirection, SelfSwapIsNoop) {
  RowIndirection ind(Geometry::tiny());
  ind.swap_logical(4, 4);
  EXPECT_EQ(ind.to_physical(4), 4u);
  EXPECT_EQ(ind.displaced_rows(), 0u);
}

TEST(Indirection, ResetClearsEverything) {
  RowIndirection ind(Geometry::tiny());
  ind.swap_logical(1, 2);
  ind.reset();
  EXPECT_EQ(ind.to_physical(1), 1u);
  EXPECT_EQ(ind.displaced_rows(), 0u);
}

TEST(Indirection, OutOfRangeRejected) {
  const Geometry g = Geometry::tiny();
  RowIndirection ind(g);
  EXPECT_THROW(static_cast<void>(ind.to_physical(g.total_rows())), dl::Error);
  EXPECT_THROW(ind.swap_logical(0, g.total_rows()), dl::Error);
}

}  // namespace
