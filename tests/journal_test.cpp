// Tests for the campaign checkpoint journal: byte-identical resume for
// hammer and BFA campaigns, torn-tail tolerance, and failed-entry replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/quant.hpp"
#include "nn/train.hpp"
#include "scenario/journal.hpp"
#include "scenario/scenario.hpp"
#include "traffic/stream.hpp"

namespace {

using namespace dl;
using scenario::CampaignJournal;
using scenario::DefenseSpec;
using scenario::HammerCampaign;

std::string journal_path(const char* name) {
  const std::string path = testing::TempDir() + "dl_journal_" + name +
                           ".jsonl";
  std::remove(path.c_str());
  return path;
}

scenario::DramEnv small_env() {
  scenario::DramEnv e;
  e.geometry.channels = 1;
  e.geometry.ranks = 1;
  e.geometry.banks = 2;
  e.geometry.subarrays_per_bank = 4;
  e.geometry.rows_per_subarray = 128;
  e.geometry.row_bytes = 4096;
  e.disturbance.t_rh = 1000;
  e.disturbance_seed = 1;
  return e;
}

/// A small campaign set covering the result surface: a plain cell, a
/// DRAM-Locker cell, a multi-tenant cell with integrity (tenant latency
/// arrays + integrity stats), a fault-injection cell, a budget-truncated
/// cell, and a deliberately broken one (tenant stream outside the
/// geometry -> constructor throw -> "failed").
std::vector<HammerCampaign> journal_campaigns() {
  std::vector<HammerCampaign> campaigns;

  HammerCampaign plain;
  plain.name = "plain";
  plain.env = small_env();
  plain.attack.victim_row = 20;
  plain.attack.act_budget = 4000;
  campaigns.push_back(plain);

  HammerCampaign locker = plain;
  locker.name = "locker";
  defense::DramLockerConfig locker_cfg;
  locker_cfg.protect_radius = 2;
  locker.defense = DefenseSpec::dram_locker(locker_cfg, 2);
  locker.protected_rows = {20};
  campaigns.push_back(locker);

  HammerCampaign traffic = plain;
  traffic.name = "traffic+integrity";
  traffic.defense = DefenseSpec::none().with_integrity({});
  traffic.defense.integrity.enabled = true;
  traffic.protected_rows = {20};
  traffic.traffic.tenants = {
      dl::traffic::StreamSpec::weight_reader(16, 8, 500),
      dl::traffic::StreamSpec::hammer(rowhammer::HammerPattern::kDoubleSided,
                                      20, 2000),
  };
  campaigns.push_back(traffic);

  HammerCampaign faulty = plain;
  faulty.name = "faulty";
  faulty.env.faults.period_acts = 64;
  faulty.env.faults.transient_rate = 0.5;
  faulty.env.faults.retention_rate = 0.5;
  campaigns.push_back(faulty);

  HammerCampaign truncated = plain;
  truncated.name = "truncated";
  truncated.cycles = 100;
  truncated.budget.max_cycles = 2;
  campaigns.push_back(truncated);

  HammerCampaign broken = plain;
  broken.name = "broken";
  broken.traffic.tenants = {
      dl::traffic::StreamSpec::weight_reader(1u << 20, 8, 100)};
  campaigns.push_back(broken);

  return campaigns;
}

TEST(Journal, HammerResumeIsByteIdentical) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("hammer");

  const auto direct = scenario::run(campaigns);
  const std::string expected = scenario::report_json(direct).dump(2);

  std::string first;
  {
    CampaignJournal journal(path);
    EXPECT_EQ(journal.loaded(), 0u);
    first = scenario::report_json(scenario::run_journaled(campaigns, journal))
                .dump(2);
  }
  EXPECT_EQ(first, expected);

  // Second run restores every campaign from disk — including the failed
  // and truncated ones — and reproduces the report byte for byte.
  {
    CampaignJournal journal(path);
    EXPECT_EQ(journal.loaded(), campaigns.size());
    const auto* cached = journal.find_hammer("broken");
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->status, scenario::CampaignStatus::kFailed);
    EXPECT_FALSE(cached->error.empty());
    const auto resumed = scenario::run_journaled(campaigns, journal);
    EXPECT_EQ(scenario::report_json(resumed).dump(2), expected);
  }
  std::remove(path.c_str());
}

TEST(Journal, PartialJournalRunsOnlyTheRest) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("partial");

  const auto direct = scenario::run(campaigns);
  // Journal only a prefix, as if the first run died after two campaigns.
  {
    CampaignJournal journal(path);
    journal.record(direct[0]);
    journal.record(direct[1]);
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.loaded(), 2u);
  const auto resumed = scenario::run_journaled(campaigns, journal);
  EXPECT_EQ(scenario::report_json(resumed).dump(2),
            scenario::report_json(direct).dump(2));
  std::remove(path.c_str());
}

TEST(Journal, TornTailLineIsSkippedOnLoad) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("torn");
  {
    CampaignJournal journal(path);
    (void)scenario::run_journaled(campaigns, journal);
  }
  {
    // The process died mid-append: an unterminated half line.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"kind\":\"hammer\",\"name\":\"torn-victim\",\"gr";
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.loaded(), campaigns.size());  // torn line dropped
  EXPECT_EQ(journal.find_hammer("torn-victim"), nullptr);
  const auto resumed = scenario::run_journaled(campaigns, journal);
  EXPECT_EQ(scenario::report_json(resumed).dump(2),
            scenario::report_json(scenario::run(campaigns)).dump(2));
  std::remove(path.c_str());
}

TEST(Journal, DuplicateEntriesResolveLastWins) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("dup");
  const auto direct = scenario::run(campaigns);
  {
    CampaignJournal journal(path);
    auto doctored = direct[0];
    doctored.attack.granted_acts = 1;  // stale line, superseded below
    journal.record(doctored);
    journal.record(direct[0]);
  }
  CampaignJournal journal(path);
  const auto* cached = journal.find_hammer(direct[0].name);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->attack.granted_acts, direct[0].attack.granted_acts);
  std::remove(path.c_str());
}

// ------------------------------------------------------ CRC trailer

TEST(Journal, CorruptedLineIsSkippedWithWarning) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("crc");
  {
    CampaignJournal journal(path);
    (void)scenario::run_journaled(campaigns, journal);
  }
  // Flip one payload byte of the first line.  The line still parses as
  // JSON (a digit changed inside a number), so only the CRC trailer can
  // tell the loader the campaign result rotted on disk.
  std::string text;
  {
    std::ifstream in(path);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t digit = text.find_first_of("0123456789");
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '8' : static_cast<char>(text[digit] + 1);
  {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.crc_mismatches(), 1u);
  EXPECT_EQ(journal.loaded(), campaigns.size() - 1);  // corrupt line dropped
  // The dropped campaign simply re-runs; the resumed report still matches
  // an uninterrupted one byte for byte.
  const auto resumed = scenario::run_journaled(campaigns, journal);
  EXPECT_EQ(scenario::report_json(resumed).dump(2),
            scenario::report_json(scenario::run(campaigns)).dump(2));
  std::remove(path.c_str());
}

TEST(Journal, LegacyLineWithoutTrailerStillLoads) {
  const auto campaigns = journal_campaigns();
  const std::string path = journal_path("legacy");
  const auto direct = scenario::run(campaigns);
  {
    CampaignJournal journal(path);
    journal.record(direct[0]);
  }
  // Strip the CRC trailer, as a journal written before the trailer existed.
  std::string line;
  {
    std::ifstream in(path);
    std::getline(in, line);
  }
  const std::size_t tab = line.rfind('\t');
  ASSERT_NE(tab, std::string::npos);
  line.resize(tab);
  {
    std::ofstream out(path, std::ios::trunc);
    out << line << '\n';
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.crc_mismatches(), 0u);
  EXPECT_EQ(journal.loaded(), 1u);
  EXPECT_NE(journal.find_hammer(direct[0].name), nullptr);
  std::remove(path.c_str());
}

// ------------------------------------------------------ serve journal

TEST(Journal, ServeResumeIsByteIdentical) {
  // A plain serve campaign and a chaos one (resilience + admission + a
  // mid-run channel kill): the chaos result exercises every serve journal
  // field — availability block, channel health, resilience counters, and
  // per-tenant admission stats.
  scenario::ServeCampaign plain;
  plain.name = "serve/plain";
  plain.env = small_env();
  plain.defense = DefenseSpec::none().with_integrity({});
  plain.defense.integrity.enabled = true;
  plain.traffic.tenants = {
      dl::traffic::StreamSpec::weight_reader(16, 8, 400),
      dl::traffic::StreamSpec::synthetic(64, 32, 200, 0.4, 0.2, 1),
  };
  plain.rounds = 2;

  scenario::ServeCampaign chaos = plain;
  chaos.name = "serve/chaos";
  chaos.env.fabric.channels = 2;
  chaos.env.resilience.spare_rows = 4;
  chaos.traffic.admission.enabled = true;
  chaos.traffic.admission.retry_budget = 2;
  const auto rows_per_channel = chaos.env.geometry.total_rows();
  dl::traffic::StreamSpec pinned =
      dl::traffic::StreamSpec::weight_reader(rows_per_channel + 16, 8, 300);
  pinned.pin_channel = 1;
  chaos.traffic.tenants.push_back(pinned);
  chaos.rounds = 3;
  chaos.chaos.kill_channel = 1;
  chaos.chaos.kill_at_round = 1;
  chaos.chaos.restore_at_round = 2;
  const std::vector<scenario::ServeCampaign> campaigns = {plain, chaos};

  std::vector<scenario::ServeCampaignResult> direct;
  for (const auto& c : campaigns) {
    direct.push_back(scenario::run_serve_isolated(c));
  }
  const std::string expected = scenario::report_json({}, {}, direct).dump(2);

  const std::string path = journal_path("serve");
  {
    CampaignJournal journal(path);
    const auto first = scenario::run_serve_journaled(campaigns, journal);
    EXPECT_EQ(scenario::report_json({}, {}, first).dump(2), expected);
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.loaded(), campaigns.size());
  const auto* cached = journal.find_serve("serve/chaos");
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->chaos_enabled);
  EXPECT_GT(cached->availability.offered, 0u);
  const auto resumed = scenario::run_serve_journaled(campaigns, journal);
  EXPECT_EQ(scenario::report_json({}, {}, resumed).dump(2), expected);
  std::remove(path.c_str());
}

// ------------------------------------------------------ BFA journal

TEST(Journal, BfaResumeIsByteIdentical) {
  // Tiny trained victim: the BFA result carries hexfloat-encoded accuracy
  // curves, the exact-round-trip stress case for the journal.
  nn::SynthConfig cfg = nn::synth_cifar10();
  cfg.num_classes = 4;
  const nn::Dataset train = nn::make_synth_cifar(cfg, 64, 41);
  const nn::Dataset sample = nn::make_synth_cifar(cfg, 16, 42);
  nn::Model model;
  dl::Rng rng(43);
  model.add(std::make_unique<nn::Conv2d>(3, 4, 3, 2, 1, rng));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::GlobalAvgPool>());
  model.add(std::make_unique<nn::Linear>(4, 4, rng));
  nn::SgdConfig scfg;
  scfg.epochs = 2;
  scfg.batch_size = 16;
  nn::SgdTrainer trainer(model, scfg, dl::Rng(44));
  trainer.fit(train);
  nn::QuantizedModel qmodel(model);
  const scenario::VictimRef victim{model, qmodel, sample,
                                   nn::evaluate_accuracy(model, sample)};

  scenario::BfaCampaign attacked;
  attacked.name = "bfa/plain";
  attacked.bfa.max_iterations = 4;
  attacked.bfa.layers_evaluated = 1;
  attacked.fixed_iterations = true;
  scenario::BfaCampaign defended = attacked;
  defended.name = "bfa/integrity";
  defended.integrity.enabled = true;
  defended.integrity.verify_interval = 1;
  const std::vector<scenario::BfaCampaign> campaigns = {attacked, defended};

  const auto direct = scenario::run_bfa(victim, campaigns);
  const std::string expected = scenario::report_json({}, direct).dump(2);

  const std::string path = journal_path("bfa");
  {
    CampaignJournal journal(path);
    const auto first = scenario::run_bfa_journaled(victim, campaigns, journal);
    EXPECT_EQ(scenario::report_json({}, first).dump(2), expected);
  }
  CampaignJournal journal(path);
  EXPECT_EQ(journal.loaded(), campaigns.size());
  ASSERT_NE(journal.find_bfa("bfa/integrity"), nullptr);
  const auto resumed = scenario::run_bfa_journaled(victim, campaigns, journal);
  EXPECT_EQ(scenario::report_json({}, resumed).dump(2), expected);
  std::remove(path.c_str());
}

}  // namespace
