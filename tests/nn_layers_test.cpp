// Layer forward/backward tests, including finite-difference gradient checks.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"

namespace {

using namespace dl::nn;

Tensor randn(std::vector<std::size_t> shape, dl::Rng& rng, float scale = 1.f) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = scale * static_cast<float>(rng.normal());
  }
  return t;
}

/// Scalar loss used by gradient checks: sum of 0.5*y^2 so dL/dy = y.
float half_sq_sum(const Tensor& y) {
  double s = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    s += 0.5 * static_cast<double>(y[i]) * y[i];
  }
  return static_cast<float>(s);
}

/// Checks layer input gradients and parameter gradients against central
/// finite differences.
void grad_check(Layer& layer, Tensor x, float tol = 2e-2f) {
  // Analytic gradients.
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor dy = y;  // dL/dy = y for the half-square loss
  for (Param* p : layer.params()) p->grad.zero();
  Tensor dx = layer.backward(dy);

  const float eps = 1e-2f;
  auto loss_at = [&](Tensor& storage, std::size_t idx, float delta) {
    const float saved = storage[idx];
    storage[idx] = saved + delta;
    const float l = half_sq_sum(layer.forward(x, /*train=*/true));
    storage[idx] = saved;
    return l;
  };

  // Input gradient at a handful of positions.
  for (std::size_t idx = 0; idx < x.numel();
       idx += std::max<std::size_t>(1, x.numel() / 7)) {
    const float lp = loss_at(x, idx, eps);
    const float lm = loss_at(x, idx, -eps);
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[idx], numeric, tol * std::max(1.0f, std::abs(numeric)))
        << "input idx " << idx;
  }
  // Parameter gradients.
  for (Param* p : layer.params()) {
    for (std::size_t idx = 0; idx < p->value.numel();
         idx += std::max<std::size_t>(1, p->value.numel() / 5)) {
      const float lp = loss_at(p->value, idx, eps);
      const float lm = loss_at(p->value, idx, -eps);
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[idx], numeric,
                  tol * std::max(1.0f, std::abs(numeric)))
          << p->name << " idx " << idx;
    }
  }
}

TEST(Conv2d, ForwardIdentityKernel) {
  dl::Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.zero();
  conv.weight().value[4] = 1.0f;  // centre tap: identity
  Tensor x = randn({1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, ForwardShiftKernel) {
  dl::Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.weight().value.zero();
  conv.weight().value[5] = 1.0f;  // right tap: shifts image left
  Tensor x({1, 1, 2, 3});
  for (std::size_t i = 0; i < 6; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 2), 0.0f);  // zero padding
}

TEST(Conv2d, StrideHalvesOutput) {
  dl::Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor x = randn({2, 3, 8, 8}, rng);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.dim(2), 4u);
  EXPECT_EQ(y.dim(3), 4u);
  EXPECT_EQ(y.dim(1), 8u);
}

TEST(Conv2d, GradCheck3x3) {
  dl::Rng rng(2);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  grad_check(conv, randn({2, 2, 4, 4}, rng, 0.5f));
}

TEST(Conv2d, GradCheckStride2) {
  dl::Rng rng(3);
  Conv2d conv(2, 2, 3, 2, 1, rng);
  grad_check(conv, randn({1, 2, 6, 6}, rng, 0.5f));
}

TEST(Conv2d, GradCheck1x1) {
  dl::Rng rng(4);
  Conv2d conv(3, 4, 1, 1, 0, rng);
  grad_check(conv, randn({2, 3, 3, 3}, rng, 0.5f));
}

TEST(Linear, ForwardKnownValues) {
  dl::Rng rng(5);
  Linear lin(2, 2, rng);
  lin.weight().value[0] = 1;  // w[0][0]
  lin.weight().value[1] = 2;  // w[0][1]
  lin.weight().value[2] = 3;
  lin.weight().value[3] = 4;
  lin.bias().value[0] = 10;
  lin.bias().value[1] = 20;
  Tensor x({1, 2});
  x[0] = 1;
  x[1] = 1;
  const Tensor y = lin.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(y[1], 27.0f);  // 3+4+20
}

TEST(Linear, GradCheck) {
  dl::Rng rng(6);
  Linear lin(5, 3, rng);
  grad_check(lin, randn({4, 5}, rng, 0.5f));
}

TEST(BatchNorm2d, NormalizesInTraining) {
  dl::Rng rng(7);
  BatchNorm2d bn(3);
  Tensor x = randn({4, 3, 5, 5}, rng, 3.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::size_t c = 0; c < 3; ++c) {
    double sum = 0, sq = 0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 25; ++i) {
        const float v = y.data()[y.index4(n, c, 0, 0) + i];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / count - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  dl::Rng rng(8);
  BatchNorm2d bn(2);
  // Train on one distribution...
  for (int i = 0; i < 20; ++i) {
    Tensor x = randn({8, 2, 4, 4}, rng, 2.0f);
    bn.forward(x, /*train=*/true);
  }
  // ...then eval on a constant input: output must not be re-normalized to
  // zero mean (running stats are used instead of batch stats).
  Tensor x({2, 2, 4, 4});
  x.fill(5.0f);
  const Tensor y = bn.forward(x, /*train=*/false);
  EXPECT_GT(std::abs(y[0]), 0.5f);
}

TEST(BatchNorm2d, GradCheck) {
  dl::Rng rng(9);
  BatchNorm2d bn(2);
  grad_check(bn, randn({3, 2, 3, 3}, rng), /*tol=*/5e-2f);
}

TEST(ReLU, ForwardBackwardMasks) {
  ReLU relu;
  Tensor x({4});
  x[0] = -1;
  x[1] = 2;
  x[2] = -3;
  x[3] = 4;
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[1], 2);
  Tensor dy({4});
  dy.fill(1.0f);
  const Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[1], 1);
  EXPECT_FLOAT_EQ(dx[2], 0);
  EXPECT_FLOAT_EQ(dx[3], 1);
}

TEST(MaxPool2d, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2});
  x[0] = 1;
  x[1] = 5;
  x[2] = 3;
  x[3] = 2;
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor dy({1, 1, 1, 1});
  dy[0] = 7.0f;
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[1], 7.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(MaxPool2d, HandlesWindowsBelowOldSentinel) {
  // Regression: forward used to seed the max with -1e30, so a window whose
  // values are all <= -1e30 reported max -1e30 and argmax 0 (routing the
  // gradient to the wrong input).  The max/argmax must come from the
  // window itself.
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2});
  x[0] = -2e30f;
  x[1] = -3e30f;
  x[2] = -4e30f;
  x[3] = -2.5e30f;
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], -2e30f);
  Tensor dy({1, 1, 1, 1});
  dy[0] = 1.0f;
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(GlobalAvgPool, ForwardBackward) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor y = gap.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.5f);  // mean of 0,1,2,3
  EXPECT_FLOAT_EQ(y.at2(0, 1), 5.5f);
  Tensor dy({1, 2});
  dy[0] = 4.0f;
  dy[1] = 8.0f;
  const Tensor dx = gap.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[4], 2.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  const Tensor y = flat.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));
  const Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(BasicBlock, IdentityShortcutShapes) {
  dl::Rng rng(10);
  BasicBlock block(8, 8, 1, rng);
  Tensor x = randn({2, 8, 4, 4}, rng, 0.5f);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_EQ(block.params().size(), 6u);  // 2 convs + 2 BNs
}

TEST(BasicBlock, ProjectionShortcutShapes) {
  dl::Rng rng(11);
  BasicBlock block(8, 16, 2, rng);
  Tensor x = randn({2, 8, 8, 8}, rng, 0.5f);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.dim(1), 16u);
  EXPECT_EQ(y.dim(2), 4u);
  EXPECT_EQ(block.params().size(), 9u);  // + projection conv & BN
}

TEST(BasicBlock, BackwardProducesInputGradient) {
  dl::Rng rng(12);
  BasicBlock block(4, 4, 1, rng);
  Tensor x = randn({1, 4, 4, 4}, rng, 0.5f);
  const Tensor y = block.forward(x, true);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  const Tensor dx = block.backward(dy);
  EXPECT_EQ(dx.shape(), x.shape());
  double mag = 0;
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    mag += std::abs(dx[i]);
  }
  EXPECT_GT(mag, 0.0);
}

TEST(SoftmaxCrossEntropy, UniformLogits) {
  Tensor logits({2, 4});
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5);
  // Gradient sums to zero per sample.
  for (std::size_t n = 0; n < 2; ++n) {
    float s = 0;
    for (std::size_t c = 0; c < 4; ++c) s += r.grad.at2(n, c);
    EXPECT_NEAR(s, 0.0f, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, CorrectCounting) {
  Tensor logits({2, 3});
  logits.at2(0, 1) = 5.0f;  // sample 0 predicts class 1
  logits.at2(1, 2) = 5.0f;  // sample 1 predicts class 2
  const LossResult r = softmax_cross_entropy(logits, {1, 0});
  EXPECT_EQ(r.correct, 1u);
}

}  // namespace
