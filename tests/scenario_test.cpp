// Tests for the declarative campaign engine.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/parallel.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace dl;
using scenario::DefenseSpec;
using scenario::HammerCampaign;
using scenario::HammerCampaignResult;

scenario::DramEnv small_env(std::uint64_t t_rh = 1000) {
  scenario::DramEnv e;
  e.geometry.channels = 1;
  e.geometry.ranks = 1;
  e.geometry.banks = 2;
  e.geometry.subarrays_per_bank = 4;
  e.geometry.rows_per_subarray = 128;
  e.geometry.row_bytes = 4096;
  e.disturbance.t_rh = t_rh;
  e.disturbance_seed = 1;
  return e;
}

HammerCampaign small_campaign(const char* name, DefenseSpec defense,
                              std::uint64_t budget = 5000) {
  HammerCampaign c;
  c.name = name;
  c.env = small_env();
  c.defense = defense;
  c.attack.victim_row = 20;
  c.attack.act_budget = budget;
  if (defense.kind == DefenseSpec::Kind::kDramLocker) {
    c.protected_rows = {20};
  }
  return c;
}

void expect_equal(const HammerCampaignResult& a,
                  const HammerCampaignResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.attack.granted_acts, b.attack.granted_acts);
  EXPECT_EQ(a.attack.denied_acts, b.attack.denied_acts);
  EXPECT_EQ(a.attack.flips_in_victim, b.attack.flips_in_victim);
  EXPECT_EQ(a.attack.flips_elsewhere, b.attack.flips_elsewhere);
  EXPECT_EQ(a.attack.elapsed, b.attack.elapsed);
  EXPECT_EQ(a.tracker.observed_acts, b.tracker.observed_acts);
  EXPECT_EQ(a.tracker.mitigations, b.tracker.mitigations);
  EXPECT_EQ(a.tracker.victim_refreshes, b.tracker.victim_refreshes);
  EXPECT_EQ(a.locker.denied, b.locker.denied);
  EXPECT_EQ(a.locker.unlock_swaps, b.locker.unlock_swaps);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.rowclones, b.rowclones);
  EXPECT_EQ(a.total_flips, b.total_flips);
  EXPECT_EQ(a.defense_time, b.defense_time);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

std::vector<HammerCampaign> mixed_campaigns() {
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 2;
  return {
      small_campaign("none", DefenseSpec::none()),
      small_campaign("cpr", DefenseSpec::counter_per_row(500, 2)),
      small_campaign("graphene", DefenseSpec::graphene(500, 64, 2)),
      small_campaign("tree", DefenseSpec::counter_tree(500, 32, 2)),
      small_campaign("hydra", DefenseSpec::hydra(500, 64, 2)),
      small_campaign("trr", DefenseSpec::trr(0.02, 1, 11)),
      small_campaign("locker", DefenseSpec::dram_locker(lcfg, 5)),
  };
}

TEST(ScenarioTest, RunMatchesRunOne) {
  const auto campaigns = mixed_campaigns();
  const auto fanned = scenario::run(campaigns);
  ASSERT_EQ(fanned.size(), campaigns.size());
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    const auto serial = scenario::run_one(campaigns[i]);
    expect_equal(serial, fanned[i]);
  }
}

TEST(ScenarioTest, ResultsBitIdenticalAcrossThreadCounts) {
  const auto campaigns = mixed_campaigns();
  parallel::set_threads(1);
  const auto serial = scenario::run(campaigns);
  parallel::set_threads(8);
  const auto threaded = scenario::run(campaigns);
  parallel::set_threads(0);  // back to the environment default
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_equal(serial[i], threaded[i]);
  }
}

TEST(ScenarioTest, DramLockerCampaignDeniesEverything) {
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 2;
  const auto r = scenario::run_one(
      small_campaign("locker", DefenseSpec::dram_locker(lcfg, 5)));
  EXPECT_EQ(r.attack.granted_acts, 0u);
  EXPECT_EQ(r.attack.denied_acts, 5000u);
  EXPECT_EQ(r.attack.flips_in_victim, 0u);
  EXPECT_GT(r.locked_rows, 0u);
  EXPECT_EQ(r.locker.denied, 5000u);
}

TEST(ScenarioTest, UndefendedCampaignLeaksFlips) {
  const auto r = scenario::run_one(
      small_campaign("none", DefenseSpec::none(), /*budget=*/20000));
  EXPECT_EQ(r.attack.granted_acts, 20000u);
  EXPECT_GT(r.attack.flips_in_victim, 0u);
  EXPECT_EQ(r.total_flips,
            r.attack.flips_in_victim + r.attack.flips_elsewhere);
}

TEST(ScenarioTest, TrafficCyclesDriveUnlockSwaps) {
  // DRAM-Locker campaign where legitimate traffic touches a locked row
  // each cycle: the unlock SWAP must show up in the stats.
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 1;
  lcfg.relock_rw_interval = 10;
  HammerCampaign c = small_campaign("unlock", DefenseSpec::dram_locker(lcfg, 2),
                                    /*budget=*/50);
  c.cycles = 5;
  c.pre_traffic = {{.row = 19, .repeat = 1, .bytes = 4, .can_unlock = true}};
  c.post_traffic = {{.row = 60, .repeat = 15, .bytes = 4}};
  const auto r = scenario::run_one(c);
  EXPECT_GT(r.locker.unlock_swaps, 0u);
  EXPECT_GT(r.rowclones, 0u);
}

TEST(ScenarioTest, ExpandBuildsFullMatrixWithDistinctSeeds) {
  scenario::MatrixSpec spec;
  spec.env = small_env();
  spec.attack.victim_row = 20;
  spec.attack.act_budget = 100;
  spec.patterns = {rowhammer::HammerPattern::kDoubleSided,
                   rowhammer::HammerPattern::kHalfDouble};
  spec.defenses = {DefenseSpec::none(), DefenseSpec::counter_per_row(500, 2)};
  spec.repetitions = 2;
  const auto campaigns = scenario::expand(spec);
  ASSERT_EQ(campaigns.size(), 8u);

  // Every campaign gets its own decorrelated streams and a unique name.
  std::set<std::uint64_t> disturbance_seeds;
  std::set<std::string> names;
  for (const auto& c : campaigns) {
    disturbance_seeds.insert(c.env.disturbance_seed);
    names.insert(c.name);
  }
  EXPECT_EQ(disturbance_seeds.size(), campaigns.size());
  EXPECT_EQ(names.size(), campaigns.size());

  // Expansion is deterministic: same spec, same campaigns.
  const auto again = scenario::expand(spec);
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    EXPECT_EQ(campaigns[i].name, again[i].name);
    EXPECT_EQ(campaigns[i].env.disturbance_seed,
              again[i].env.disturbance_seed);
    EXPECT_EQ(campaigns[i].defense.seed, again[i].defense.seed);
  }
}

TEST(ScenarioTest, ExpandDisambiguatesParameterSweeps) {
  // Sweeping a parameter of one defense kind must still yield unique
  // campaign names (they key the report rows).
  scenario::MatrixSpec spec;
  spec.env = small_env();
  spec.attack.victim_row = 20;
  spec.attack.act_budget = 100;
  spec.patterns = {rowhammer::HammerPattern::kDoubleSided};
  spec.defenses = {DefenseSpec::counter_per_row(250, 2),
                   DefenseSpec::counter_per_row(500, 2),
                   DefenseSpec::none()};
  const auto campaigns = scenario::expand(spec);
  ASSERT_EQ(campaigns.size(), 3u);
  std::set<std::string> names;
  for (const auto& c : campaigns) names.insert(c.name);
  EXPECT_EQ(names.size(), campaigns.size());
  // The singleton kind keeps its plain name.
  EXPECT_EQ(campaigns[2].name, "campaign/double-sided/none");
}

TEST(ScenarioTest, JsonReportCarriesCampaignStats) {
  const auto results = scenario::run(
      {small_campaign("none", DefenseSpec::none(), /*budget=*/100)});
  const auto doc = scenario::report_json(results);
  const std::string text = doc.dump();
  EXPECT_NE(text.find("\"hammer_campaigns\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"none\""), std::string::npos);
  EXPECT_NE(text.find("\"granted_acts\":100"), std::string::npos);
  // Pretty-printing keeps the same content.
  EXPECT_NE(doc.dump(2).find("\"granted_acts\": 100"), std::string::npos);
}

// ---------------------------------------------- error isolation & budgets

TEST(ScenarioTest, ThrowingCampaignFailsWithoutKillingSiblings) {
  auto good = small_campaign("good", DefenseSpec::none(), 2000);
  HammerCampaign broken = good;
  broken.name = "broken";
  // A tenant stream outside the geometry throws inside campaign setup.
  broken.traffic.tenants = {
      dl::traffic::StreamSpec::weight_reader(1u << 20, 8, 100)};
  auto good2 = small_campaign("good2", DefenseSpec::none(), 2000);

  const auto results = scenario::run({good, broken, good2});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, scenario::CampaignStatus::kOk);
  EXPECT_EQ(results[2].status, scenario::CampaignStatus::kOk);
  EXPECT_EQ(results[0].attack.granted_acts, 2000u);
  EXPECT_EQ(results[2].attack.granted_acts, 2000u);
  EXPECT_EQ(results[1].status, scenario::CampaignStatus::kFailed);
  EXPECT_NE(results[1].error.find("exceeds the geometry"), std::string::npos);
  EXPECT_EQ(results[1].attack.granted_acts, 0u);

  const std::string text = scenario::report_json(results).dump();
  EXPECT_NE(text.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(text.find("\"error\":"), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ScenarioTest, CycleBudgetTruncatesCampaign) {
  auto c = small_campaign("budgeted", DefenseSpec::none(), 500);
  c.cycles = 50;
  c.budget.max_cycles = 4;
  const auto r = scenario::run_one(c);
  EXPECT_EQ(r.status, scenario::CampaignStatus::kTruncated);
  EXPECT_EQ(r.completed_cycles, 4u);
  EXPECT_EQ(r.attack.granted_acts, 4u * 500u);
  EXPECT_NE(scenario::report_json({r}).dump().find("\"status\":\"truncated\""),
            std::string::npos);
}

TEST(ScenarioTest, ActBudgetTruncatesCampaign) {
  auto c = small_campaign("act-budgeted", DefenseSpec::none(), 500);
  c.cycles = 50;
  c.budget.max_acts = 1200;  // hit mid-way through cycle 3
  const auto r = scenario::run_one(c);
  EXPECT_EQ(r.status, scenario::CampaignStatus::kTruncated);
  EXPECT_LT(r.completed_cycles, 50u);
  EXPECT_GE(r.attack.granted_acts, 1200u);  // budget checked per cycle
}

TEST(ScenarioTest, FaultCampaignIsDeterministicAndReported) {
  auto c = small_campaign("faulty", DefenseSpec::none(), 3000);
  c.env.faults.period_acts = 128;
  c.env.faults.retention_rate = 0.5;
  c.env.faults.transient_rate = 0.5;
  c.env.faults.stuck_cells = 2;

  parallel::set_threads(1);
  const auto serial = scenario::run({c});
  parallel::set_threads(8);
  const auto threaded = scenario::run({c});
  parallel::set_threads(0);
  EXPECT_EQ(scenario::report_json(serial).dump(2),
            scenario::report_json(threaded).dump(2));

  const auto& r = serial[0];
  ASSERT_TRUE(r.faults_enabled);
  EXPECT_GT(r.faults.events, 0u);
  EXPECT_GT(r.faults.retention_faults + r.faults.transient_faults, 0u);
  const std::string text = scenario::report_json(serial).dump();
  EXPECT_NE(text.find("\"faults\":"), std::string::npos);
  EXPECT_NE(text.find("\"retention_faults\""), std::string::npos);
}

TEST(ScenarioTest, ExpandDerivesFaultSeedsPerCell) {
  scenario::MatrixSpec spec;
  spec.env = small_env();
  spec.env.faults.period_acts = 64;
  spec.env.faults.transient_rate = 1.0;
  spec.attack.victim_row = 20;
  spec.attack.act_budget = 100;
  spec.patterns = {rowhammer::HammerPattern::kDoubleSided};
  spec.defenses = {DefenseSpec::none(), DefenseSpec::none()};
  spec.budget.max_cycles = 7;
  const auto campaigns = scenario::expand(spec);
  ASSERT_EQ(campaigns.size(), 2u);
  EXPECT_NE(campaigns[0].env.faults.seed, campaigns[1].env.faults.seed);
  EXPECT_EQ(campaigns[0].budget.max_cycles, 7u);  // budget reaches every cell
}

}  // namespace
