// Tests for the progressive bit search and random attack.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "attack/bfa.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "nn/train.hpp"

namespace {

using namespace dl::attack;
using namespace dl::nn;

/// Small trained model + data shared by the attack tests.
struct Fixture {
  SynthConfig cfg;
  Dataset train, sample;
  Model model;
  std::unique_ptr<QuantizedModel> qmodel;
  double clean_acc = 0.0;

  Fixture() {
    cfg = synth_cifar10();
    cfg.num_classes = 4;
    train = make_synth_cifar(cfg, 128, 11);
    sample = make_synth_cifar(cfg, 32, 12);
    dl::Rng rng(21);
    model.add(std::make_unique<Conv2d>(3, 8, 3, 2, 1, rng));
    model.add(std::make_unique<BatchNorm2d>(8));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Conv2d>(8, 8, 3, 2, 1, rng));
    model.add(std::make_unique<BatchNorm2d>(8));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<GlobalAvgPool>());
    model.add(std::make_unique<Linear>(8, 4, rng));
    SgdConfig scfg;
    scfg.epochs = 6;
    scfg.batch_size = 16;
    scfg.lr = 0.08f;
    SgdTrainer trainer(model, scfg, dl::Rng(22));
    trainer.fit(train);
    qmodel = std::make_unique<QuantizedModel>(model);
    clean_acc = evaluate_accuracy(model, sample);
  }
};

Fixture& fixture() {
  static Fixture f;  // train once for the whole suite
  return f;
}

TEST(Bfa, FixtureTrainsAboveChance) {
  EXPECT_GT(fixture().clean_acc, 0.6);
}

TEST(Bfa, ProgressiveSearchDegradesAccuracy) {
  Fixture& f = fixture();
  f.qmodel->restore();
  BfaConfig cfg;
  cfg.max_iterations = 15;
  cfg.layers_evaluated = 3;
  ProgressiveBitSearch pbs(f.model, *f.qmodel, cfg);
  const BfaResult res = pbs.run(f.sample);
  EXPECT_GT(res.flips_landed, 0u);
  ASSERT_FALSE(res.iterations.empty());
  const double final_acc = res.iterations.back().accuracy_after;
  EXPECT_LT(final_acc, f.clean_acc - 0.2);
  f.qmodel->restore();
}

TEST(Bfa, LossIsNonDecreasingUnderAttack) {
  Fixture& f = fixture();
  f.qmodel->restore();
  BfaConfig cfg;
  cfg.max_iterations = 5;
  ProgressiveBitSearch pbs(f.model, *f.qmodel, cfg);
  float prev_loss = -1e9f;
  int non_increases = 0;
  for (int i = 0; i < 5; ++i) {
    const auto it = pbs.step(f.sample, {});
    if (it.loss_after < prev_loss) ++non_increases;
    prev_loss = it.loss_after;
  }
  // The greedy search occasionally plateaus but must trend upward.
  EXPECT_LE(non_increases, 1);
  f.qmodel->restore();
}

TEST(Bfa, BlockedGateStopsDegradation) {
  Fixture& f = fixture();
  f.qmodel->restore();
  BfaConfig cfg;
  cfg.max_iterations = 8;
  ProgressiveBitSearch pbs(f.model, *f.qmodel, cfg);
  const BfaResult res =
      pbs.run(f.sample, [](const BitAddress&) { return false; });
  EXPECT_EQ(res.flips_landed, 0u);
  EXPECT_EQ(res.flips_blocked, res.iterations.size());
  const double final_acc = res.iterations.back().accuracy_after;
  EXPECT_NEAR(final_acc, f.clean_acc, 0.08);
  f.qmodel->restore();
}

TEST(Bfa, BlockedBitsAreNotRetried) {
  Fixture& f = fixture();
  f.qmodel->restore();
  BfaConfig cfg;
  cfg.max_iterations = 4;
  ProgressiveBitSearch pbs(f.model, *f.qmodel, cfg);
  std::set<std::tuple<std::size_t, std::size_t, unsigned>> offered;
  pbs.run(f.sample, [&](const BitAddress& a) {
    const auto key = std::make_tuple(a.layer, a.weight, a.bit);
    EXPECT_FALSE(offered.contains(key)) << "bit offered twice";
    offered.insert(key);
    return false;
  });
  f.qmodel->restore();
}

TEST(Bfa, StopBelowAccuracyShortCircuits) {
  Fixture& f = fixture();
  f.qmodel->restore();
  BfaConfig cfg;
  cfg.max_iterations = 50;
  cfg.stop_below_accuracy = 0.99;  // any accuracy triggers the stop
  ProgressiveBitSearch pbs(f.model, *f.qmodel, cfg);
  const BfaResult res = pbs.run(f.sample);
  EXPECT_EQ(res.iterations.size(), 1u);
  f.qmodel->restore();
}

TEST(Bfa, TwosComplementFlipArithmetic) {
  // The candidate ranking relies on exact two's-complement flip deltas;
  // verify them through QuantizedModel::flip_bit on a single-weight model.
  dl::Rng rng(31);
  Model m;
  m.add(std::make_unique<Linear>(1, 1, rng));
  QuantizedModel q(m);
  q.set_weight_word(0, 0, 0);
  q.flip_bit({0, 0, 6});
  EXPECT_EQ(q.weight_word(0, 0), 64);    // +2^6
  q.flip_bit({0, 0, 7});
  EXPECT_EQ(q.weight_word(0, 0), -64);   // sign bit on: 64 - 128
  q.flip_bit({0, 0, 6});
  EXPECT_EQ(q.weight_word(0, 0), -128);  // -64 - 64
}

TEST(RandomAttack, ManyFlipsBarelyMoveAccuracy) {
  Fixture& f = fixture();
  f.qmodel->restore();
  dl::Rng rng(41);
  const RandomAttackResult res =
      random_bit_attack(f.model, *f.qmodel, f.sample, 20, rng);
  ASSERT_EQ(res.accuracy_after.size(), 20u);
  // Fig. 1(a): random flips are far less damaging than targeted ones.
  // With ~5k weights, 20 random bit flips rarely hit anything critical.
  EXPECT_GT(res.accuracy_after.back(), f.clean_acc - 0.35);
  f.qmodel->restore();
}

TEST(RandomAttack, GateBlocksFlips) {
  Fixture& f = fixture();
  f.qmodel->restore();
  const auto image = f.qmodel->serialize();
  dl::Rng rng(43);
  random_bit_attack(f.model, *f.qmodel, f.sample, 10, rng,
                    [](const BitAddress&) { return false; });
  EXPECT_EQ(f.qmodel->serialize(), image);
  f.qmodel->restore();
}

}  // namespace
