// Parity suite: the blocked, register-tiled GEMM kernels must agree with
// the naive reference kernels across odd/edge shapes, with and without
// accumulation, and must propagate NaN/Inf from B (the historical kernels
// skipped zero A elements, silently masking non-finite B values).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace dl::nn;

std::vector<float> random_buf(std::size_t n, dl::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, std::size_t k,
                  const std::string& what) {
  ASSERT_EQ(got.size(), want.size());
  // The blocked kernels accumulate each element in the same ascending-p
  // order as the reference, so only rounding of the accumulate path can
  // differ; a k-scaled tolerance is generous.
  const float tol = 1e-5f * static_cast<float>(k + 1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << what << " at " << i;
  }
}

class GemmParity : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmParity, MatchesReference) {
  const auto [m, k, n] = GetParam();
  dl::Rng rng(m * 1000003 + k * 1009 + n);
  const auto a = random_buf(m * k, rng);   // also reads as k x m for at
  const auto b = random_buf(k * n, rng);   // also reads as n x k for bt
  const auto bt = random_buf(n * k, rng);
  const auto c0 = random_buf(m * n, rng);  // accumulate seed

  for (const bool accumulate : {false, true}) {
    SCOPED_TRACE(accumulate ? "accumulate" : "overwrite");
    {
      auto got = c0, want = c0;
      gemm(m, k, n, a.data(), b.data(), got.data(), accumulate);
      reference::gemm(m, k, n, a.data(), b.data(), want.data(), accumulate);
      expect_close(got, want, k, "gemm");
    }
    {
      auto got = c0, want = c0;
      gemm_at(m, k, n, a.data(), b.data(), got.data(), accumulate);
      reference::gemm_at(m, k, n, a.data(), b.data(), want.data(),
                         accumulate);
      expect_close(got, want, k, "gemm_at");
    }
    {
      auto got = c0, want = c0;
      gemm_bt(m, k, n, a.data(), bt.data(), got.data(), accumulate);
      reference::gemm_bt(m, k, n, a.data(), bt.data(), want.data(),
                         accumulate);
      expect_close(got, want, k, "gemm_bt");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8, 17, 64),
                       ::testing::Values<std::size_t>(1, 3, 8, 17, 64),
                       ::testing::Values<std::size_t>(1, 3, 8, 17, 64)));

// Shapes that cross the kernel's cache-block boundaries (k panel 128,
// j panel 512) and leave register-tile remainder rows.
INSTANTIATE_TEST_SUITE_P(
    BlockBoundaries, GemmParity,
    ::testing::Values(std::make_tuple(10, 200, 600),
                      std::make_tuple(5, 129, 513),
                      std::make_tuple(64, 300, 1),
                      std::make_tuple(2, 1, 1024)));

TEST(GemmParity, MatchesReferenceWhenParallel) {
  dl::parallel::set_threads(8);
  const std::size_t m = 37, k = 150, n = 530;
  dl::Rng rng(99);
  const auto a = random_buf(m * k, rng);
  const auto b = random_buf(k * n, rng);
  std::vector<float> got(m * n, 0.0f), want(m * n, 0.0f);
  gemm(m, k, n, a.data(), b.data(), got.data());
  reference::gemm(m, k, n, a.data(), b.data(), want.data());
  dl::parallel::set_threads(0);
  expect_close(got, want, k, "gemm@8threads");
}

TEST(GemmNonFinite, NanInBPropagatesPastZeroWeights) {
  // A zero A element must not short-circuit the product: 0 * NaN is NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a = {0.0f, 1.0f};   // 1 x 2
  const std::vector<float> b = {nan, 2.0f,     // 2 x 2, NaN in row 0
                                3.0f, 4.0f};
  std::vector<float> c(2, 0.0f);
  gemm(1, 2, 2, a.data(), b.data(), c.data());
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_NEAR(c[1], 4.0f, 1e-6f);

  // Same through the transposed-A kernel (a stored 2 x 1).
  std::fill(c.begin(), c.end(), 0.0f);
  gemm_at(1, 2, 2, a.data(), b.data(), c.data());
  EXPECT_TRUE(std::isnan(c[0]));

  // And the B-transposed kernel (b stored 2 x 2, NaN pairs with a zero).
  const std::vector<float> btr = {nan, 3.0f, 2.0f, 4.0f};
  std::fill(c.begin(), c.end(), 0.0f);
  gemm_bt(1, 2, 2, a.data(), btr.data(), c.data());
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(GemmNonFinite, InfPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> a = {0.0f, 1.0f};
  const std::vector<float> b = {inf, 0.0f, 1.0f, 1.0f};
  std::vector<float> c(2, 0.0f);
  gemm(1, 2, 2, a.data(), b.data(), c.data());
  EXPECT_TRUE(std::isnan(c[0]));  // 0 * inf = NaN per IEEE-754
  EXPECT_NEAR(c[1], 1.0f, 1e-6f);
}

TEST(GemmEdge, ZeroSizedDimensions) {
  std::vector<float> c = {1.0f, 2.0f};
  gemm(1, 0, 2, nullptr, nullptr, c.data(), /*accumulate=*/false);
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[1], 0.0f);
  c = {1.0f, 2.0f};
  gemm(1, 0, 2, nullptr, nullptr, c.data(), /*accumulate=*/true);
  EXPECT_EQ(c[0], 1.0f);
  EXPECT_EQ(c[1], 2.0f);
}

}  // namespace
