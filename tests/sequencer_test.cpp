// Tests for the µOp sequencer and the 3-copy SWAP.
#include <gtest/gtest.h>

#include <array>

#include "defense/sequencer.hpp"

namespace {

using namespace dl::defense;
using namespace dl::dram;

class SequencerTest : public ::testing::Test {
 protected:
  Geometry g = Geometry::tiny();
  Controller ctrl{g, ddr4_2400()};
  Sequencer seq{ctrl, dl::Rng(7), 0.0};

  void write_row_byte(GlobalRowId row, std::uint8_t v) {
    ctrl.data().write_byte(row, 0, v);
  }
  std::uint8_t row_byte(GlobalRowId row) {
    return ctrl.data().read_byte(row, 0);
  }
};

TEST_F(SequencerTest, SwapExchangesRowContents) {
  write_row_byte(10, 0xAA);  // "locked" row
  write_row_byte(20, 0xBB);  // "unlocked" free row
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);  // buffer row in the same subarray
  const auto res = seq.run(swap_program());
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.copies, 3u);
  EXPECT_EQ(res.copy_errors, 0u);
  EXPECT_EQ(row_byte(10), 0xBB);
  EXPECT_EQ(row_byte(20), 0xAA);
}

class SwapDataPattern : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(SwapDataPattern, SwapPreservesEveryPattern) {
  const std::uint8_t pattern = GetParam();
  const Geometry g = Geometry::tiny();
  Controller ctrl(g, ddr4_2400());
  Sequencer seq(ctrl, dl::Rng(7), 0.0);
  // Fill both rows fully with complementary patterns.
  std::vector<std::uint8_t> a(g.row_bytes, pattern);
  std::vector<std::uint8_t> b(g.row_bytes,
                              static_cast<std::uint8_t>(~pattern));
  ctrl.data().write(10, 0, a);
  ctrl.data().write(20, 0, b);
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  ASSERT_TRUE(seq.run(swap_program()).completed);
  std::vector<std::uint8_t> out(g.row_bytes);
  ctrl.data().read(10, 0, out);
  EXPECT_EQ(out, b);
  ctrl.data().read(20, 0, out);
  EXPECT_EQ(out, a);
}

INSTANTIATE_TEST_SUITE_P(Patterns, SwapDataPattern,
                         ::testing::Values(0x00, 0xFF, 0xAA, 0x55, 0x3C,
                                           0x81));

TEST_F(SequencerTest, SwapConsumesSixActivations) {
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  seq.run(swap_program());
  // 3 RowClones x 2 ACTs each.
  EXPECT_EQ(ctrl.stats().get("activates"), 6.0);
  EXPECT_EQ(ctrl.stats().get("rowclones"), 3.0);
}

TEST_F(SequencerTest, BnezLoopRepeats) {
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  seq.load_reg(4, 2);  // loop counter: 2 extra rounds
  const auto res = seq.run(repeated_swap_program(4, 3));
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.copies, 9u);  // 3 rounds of 3 copies
}

TEST_F(SequencerTest, TripleSwapIsIdentity) {
  write_row_byte(10, 0x12);
  write_row_byte(20, 0x34);
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  seq.load_reg(4, 1);  // two total rounds: swap + swap back
  seq.run(repeated_swap_program(4, 3));
  EXPECT_EQ(row_byte(10), 0x12);
  EXPECT_EQ(row_byte(20), 0x34);
}

TEST_F(SequencerTest, FuelBoundsRunawayPrograms) {
  // A BNEZ with a huge counter must stop at the fuel limit.
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  seq.load_reg(4, 1'000'000);
  const auto res = seq.run(repeated_swap_program(4, 3), /*fuel=*/50);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.uops_executed, 50u);
}

TEST_F(SequencerTest, ErrorInjectionMatchesRate) {
  Sequencer noisy(ctrl, dl::Rng(3), 0.25);
  noisy.load_reg(kRegLocked, 10);
  noisy.load_reg(kRegUnlocked, 20);
  noisy.load_reg(kRegBuffer, 63);
  std::uint64_t errors = 0, copies = 0;
  for (int i = 0; i < 400; ++i) {
    const auto res = noisy.run(swap_program());
    errors += res.copy_errors;
    copies += res.copies;
  }
  EXPECT_NEAR(static_cast<double>(errors) / static_cast<double>(copies),
              0.25, 0.05);
}

TEST_F(SequencerTest, ErrorCorruptsDestinationRow) {
  Sequencer broken(ctrl, dl::Rng(3), 1.0);  // every copy fails
  write_row_byte(10, 0x00);
  write_row_byte(20, 0x00);
  broken.load_reg(kRegLocked, 10);
  broken.load_reg(kRegUnlocked, 20);
  broken.load_reg(kRegBuffer, 63);
  const auto res = broken.run(swap_program());
  EXPECT_EQ(res.copy_errors, 3u);
  EXPECT_EQ(ctrl.stats().get("rowclone_corruptions"), 3.0);
}

TEST_F(SequencerTest, EncodedProgramExecutes) {
  write_row_byte(10, 0x77);
  write_row_byte(20, 0x88);
  std::vector<std::uint16_t> words;
  for (const auto& u : swap_program()) words.push_back(u.encode());
  seq.load_reg(kRegLocked, 10);
  seq.load_reg(kRegUnlocked, 20);
  seq.load_reg(kRegBuffer, 63);
  EXPECT_TRUE(seq.run_encoded(words).completed);
  EXPECT_EQ(row_byte(10), 0x88);
}

TEST_F(SequencerTest, InvalidErrorRateRejected) {
  EXPECT_THROW(seq.set_copy_error_rate(1.5), dl::Error);
  EXPECT_THROW(seq.set_copy_error_rate(-0.1), dl::Error);
}

}  // namespace
