// Tests for the SHADOW baseline.
#include <gtest/gtest.h>

#include <array>

#include "defense/shadow.hpp"
#include "rowhammer/attacker.hpp"
#include "rowhammer/disturbance.hpp"

namespace {

using namespace dl::defense;
using namespace dl::dram;

class ShadowTest : public ::testing::Test {
 protected:
  Geometry g = Geometry::tiny();
  Controller ctrl{g, ddr4_2400()};

  ShadowConfig cfg(std::uint64_t threshold = 100,
                   std::uint64_t entries = 1000) {
    ShadowConfig c;
    c.threshold = threshold;
    c.table_entries = entries;
    return c;
  }
};

TEST_F(ShadowTest, NoShuffleBelowHalfThreshold) {
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 49; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  EXPECT_EQ(shadow.shuffles(), 0u);
}

TEST_F(ShadowTest, ShuffleTriggersAtHalfThreshold) {
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 50; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  EXPECT_GE(shadow.shuffles(), 1u);
  EXPECT_FALSE(shadow.compromised());
}

TEST_F(ShadowTest, ShuffleRelocatesVictimData) {
  const std::array<std::uint8_t, 1> payload{0x42};
  ctrl.write(ctrl.mapper().row_base(19), payload);
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 50; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  ASSERT_GE(shadow.shuffles(), 1u);
  // Logical row 19 is addressable at the same address but physically moved.
  std::array<std::uint8_t, 1> buf{};
  ctrl.read(ctrl.mapper().row_base(19), buf);
  EXPECT_EQ(buf[0], 0x42);
  EXPECT_NE(ctrl.indirection().to_physical(19), 19u);
}

TEST_F(ShadowTest, ShufflingProtectsAgainstHammer) {
  dl::rowhammer::DisturbanceConfig dcfg;
  dcfg.t_rh = 100;
  dcfg.deterministic_bits = true;
  dl::rowhammer::DisturbanceModel model(ctrl, dcfg, dl::Rng(1));
  ctrl.add_listener(&model);
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  dl::rowhammer::HammerAttacker attacker(ctrl, model);
  const auto res = attacker.attack(
      20, dl::rowhammer::HammerPattern::kDoubleSided, /*act_budget=*/2000);
  // The shuffle keeps moving the victims: far fewer flips land on the
  // victim than the ~20 an undefended run would produce.
  EXPECT_LT(res.flips_in_victim, 3u);
}

TEST_F(ShadowTest, CompromiseAfterTableExhaustion) {
  Shadow shadow(ctrl, cfg(100, /*entries=*/3), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 400; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  EXPECT_TRUE(shadow.compromised());
  EXPECT_LE(shadow.entries_used(), 3u);
  const auto shuffles_at_compromise = shadow.shuffles();
  // No further mitigation once compromised.
  for (int i = 0; i < 200; ++i) ctrl.hammer(ctrl.mapper().row_base(30));
  EXPECT_EQ(shadow.shuffles(), shuffles_at_compromise);
}

TEST_F(ShadowTest, ShuffleLatencyIsAccounted) {
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 50; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  EXPECT_GT(ctrl.defense_time(), 0);
  EXPECT_GE(ctrl.stats().get("rowclones"), 3.0);
}

TEST_F(ShadowTest, WindowResetClearsCounts) {
  Shadow shadow(ctrl, cfg(100), dl::Rng(3));
  ctrl.add_listener(&shadow);
  for (int i = 0; i < 30; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  ctrl.advance_time(ctrl.timing().tREFW);
  for (int i = 0; i < 30; ++i) ctrl.hammer(ctrl.mapper().row_base(20));
  EXPECT_EQ(shadow.shuffles(), 0u);  // never reached 50 within one window
}

}  // namespace
