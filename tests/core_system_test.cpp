// Tests for the core::Fabric facade and cross-cutting properties.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "core/system.hpp"

namespace {

using namespace dl;

core::SystemConfig tiny_system() {
  core::SystemConfig cfg;
  cfg.geometry.banks = 2;
  cfg.geometry.subarrays_per_bank = 4;
  cfg.geometry.rows_per_subarray = 128;
  cfg.geometry.row_bytes = 8192;
  cfg.disturbance.t_rh = 100;
  return cfg;
}

TEST(System, ComponentsAreWired) {
  core::DramLockerSystem sys(tiny_system());
  // The disturbance model is registered: hammering accumulates.
  for (int i = 0; i < 10; ++i) sys.hammer(sys.row_base(10));
  EXPECT_DOUBLE_EQ(sys.disturbance().disturbance(9), 10.0);
}

TEST(System, LockerCanOnlyBeEnabledOnce) {
  core::DramLockerSystem sys(tiny_system());
  sys.enable_locker();
  EXPECT_THROW(sys.enable_locker(), dl::Error);
}

TEST(System, ShadowCanOnlyBeEnabledOnce) {
  core::DramLockerSystem sys(tiny_system());
  sys.enable_shadow();
  EXPECT_THROW(sys.enable_shadow(), dl::Error);
}

TEST(System, ProtectRequiresLocker) {
  core::DramLockerSystem sys(tiny_system());
  EXPECT_THROW(sys.protect_physical_range(0, 64), dl::Error);
}

TEST(System, DisableGateRestoresAccess) {
  core::DramLockerSystem sys(tiny_system());
  auto& locker = sys.enable_locker();
  locker.protect_data_row(10);
  std::array<std::uint8_t, 1> buf{};
  EXPECT_FALSE(sys.read(sys.row_base(9), buf).granted);
  sys.disable_gate();
  EXPECT_TRUE(sys.read(sys.row_base(9), buf).granted);
}

TEST(System, MakeRngStreamsDiffer) {
  core::DramLockerSystem sys(tiny_system());
  Rng a = sys.make_rng();
  Rng b = sys.make_rng();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(System, SameSeedSameBehaviour) {
  // Two systems with the same config produce identical flip sequences.
  auto run = [] {
    core::DramLockerSystem sys(tiny_system());
    for (int i = 0; i < 500; ++i) sys.hammer(sys.row_base(10));
    std::vector<std::pair<std::uint32_t, unsigned>> flips;
    for (const auto& f : sys.disturbance().flips()) {
      flips.emplace_back(f.byte, f.bit);
    }
    return flips;
  };
  EXPECT_EQ(run(), run());
}

TEST(System, AddressSpacesShareFrameAllocator) {
  core::DramLockerSystem sys(tiny_system());
  auto a = sys.make_address_space();
  auto b = sys.make_address_space();
  a->map_contiguous(0x10000, 1);
  b->map_contiguous(0x10000, 1);
  // Distinct physical frames despite identical virtual layouts.
  EXPECT_NE(a->walk(0x10000)->pfn, b->walk(0x10000)->pfn);
}

TEST(System, ChannelViewExposesTopology) {
  core::DramLockerSystem sys(tiny_system());
  const auto view = sys.channel();
  const auto topo = view.topology();
  EXPECT_EQ(topo.bank_count(), view.geometry().total_banks());
  // No row opened yet; after a read the accessed bank holds an open row.
  EXPECT_EQ(topo.open_row(0), dram::Topology::kNoRow);
  std::array<std::uint8_t, 1> buf{};
  sys.read(sys.row_base(0), buf);
  EXPECT_NE(sys.channel().topology().open_row(0), dram::Topology::kNoRow);
}

TEST(System, ValidateRejectsDegenerateConfigs) {
  core::SystemConfig cfg = tiny_system();
  cfg.geometry.channels = 0;
  EXPECT_THROW(core::DramLockerSystem{cfg}, dl::Error);
  cfg.geometry.channels = 65;
  EXPECT_THROW(core::DramLockerSystem{cfg}, dl::Error);
  cfg = tiny_system();
  cfg.geometry.channels = 4;
  cfg.geometry.rows_per_subarray = 4;  // < 2 * channels
  cfg.interleave = dram::InterleavePolicy::kRowRoundRobin;
  EXPECT_THROW(core::DramLockerSystem{cfg}, dl::Error);
  cfg.interleave = dram::InterleavePolicy::kRowBlocked;
  EXPECT_NO_THROW(core::DramLockerSystem{cfg});
}

// --- cross-cutting property sweeps ------------------------------------------

class ProtectRadiusSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProtectRadiusSweep, DeniesEveryAggressorWithinRadius) {
  const std::uint32_t radius = GetParam();
  core::DramLockerSystem sys(tiny_system());
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = radius;
  auto& locker = sys.enable_locker(lcfg);
  const dram::GlobalRowId victim = 50;
  locker.protect_data_row(victim);

  for (std::uint32_t d = 1; d <= radius; ++d) {
    const auto lo = sys.hammer(sys.row_base(victim - d));
    const auto hi = sys.hammer(sys.row_base(victim + d));
    EXPECT_FALSE(lo.granted) << "distance " << d;
    EXPECT_FALSE(hi.granted) << "distance " << d;
  }
  // Just beyond the radius: allowed.
  EXPECT_TRUE(sys.hammer(sys.row_base(victim - radius - 1)).granted);
  EXPECT_TRUE(sys.hammer(sys.row_base(victim + radius + 1)).granted);
  // The data row itself is always accessible.
  std::array<std::uint8_t, 1> buf{};
  EXPECT_TRUE(sys.read(sys.row_base(victim), buf).granted);
}

INSTANTIATE_TEST_SUITE_P(Radii, ProtectRadiusSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

class UnlockCycleSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnlockCycleSweep, SwapBackPreservesDataAcrossManyCycles) {
  // Property: any number of unlock/relock cycles under kSwapBack leaves
  // the protected neighbourhood's data intact and the locks in place.
  const int cycles = GetParam();
  core::DramLockerSystem sys(tiny_system());
  defense::DramLockerConfig lcfg;
  lcfg.protect_radius = 1;
  lcfg.relock_rw_interval = 20;
  lcfg.relock_policy = defense::RelockPolicy::kSwapBack;
  auto& locker = sys.enable_locker(lcfg);

  const std::array<std::uint8_t, 4> data{0xAB, 0xCD, 0xEF, 0x01};
  sys.write(sys.row_base(9), data);
  locker.protect_data_row(10);

  std::array<std::uint8_t, 4> buf{};
  for (int c = 0; c < cycles; ++c) {
    const auto r = sys.read(sys.row_base(9), buf, /*can_unlock=*/true);
    ASSERT_TRUE(r.granted);
    ASSERT_EQ(buf, data) << "cycle " << c;
    for (int i = 0; i < 25; ++i) {
      sys.read(sys.row_base(100), buf);
    }
  }
  EXPECT_EQ(locker.stats().unlock_swaps, static_cast<std::uint64_t>(cycles));
  EXPECT_EQ(locker.stats().relocks, static_cast<std::uint64_t>(cycles));
  // Layout restored, lock intact, attacker still denied.
  EXPECT_EQ(sys.channel().indirection().to_physical(9), 9u);
  EXPECT_FALSE(sys.hammer(sys.row_base(9)).granted);
}

INSTANTIATE_TEST_SUITE_P(Cycles, UnlockCycleSweep,
                         ::testing::Values(1, 3, 10, 25));

class MapSchemeSweep
    : public ::testing::TestWithParam<dram::MapScheme> {};

TEST_P(MapSchemeSweep, ProtectionWorksUnderAnyAddressMapping) {
  core::SystemConfig cfg = tiny_system();
  cfg.map_scheme = GetParam();
  core::DramLockerSystem sys(cfg);
  const std::array<std::uint8_t, 2> data{0x12, 0x34};
  const dram::PhysAddr addr = 13 * cfg.geometry.row_bytes + 7;
  sys.write(addr, data);
  sys.enable_locker();
  EXPECT_GT(sys.protect_physical_range(addr, data.size()), 0u);
  // The row's physical neighbours are locked regardless of the mapping.
  const dram::GlobalRowId logical = sys.row_of(addr);
  const auto res = sys.hammer_attack(
      logical, rowhammer::HammerPattern::kDoubleSided, 1000);
  EXPECT_EQ(res.granted_acts, 0u);
  EXPECT_EQ(res.flips_in_victim, 0u);
  std::array<std::uint8_t, 2> buf{};
  sys.read(addr, buf, /*can_unlock=*/true);
  EXPECT_EQ(buf, data);
}

INSTANTIATE_TEST_SUITE_P(Schemes, MapSchemeSweep,
                         ::testing::Values(dram::MapScheme::kRowBankColumn,
                                           dram::MapScheme::kBankInterleaved));

}  // namespace
